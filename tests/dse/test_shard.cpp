// DSE scale-out: sharded campaigns + report merging.
//
// The contract under test: because points are densely indexed and
// self-seeded from (campaign seed, index), running a campaign as N shards
// (--shard i/N is a pure filter) and merging the N rendered reports
// reproduces the unsharded report BYTE-IDENTICALLY — same records, same
// globally recomputed Pareto frontier, same campaign header.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dse/campaign.hpp"
#include "dse/merge.hpp"
#include "dse/report.hpp"
#include "dse/sweep_spec.hpp"

namespace mte::dse {
namespace {

SweepSpec shard_spec() {
  SweepSpec spec;
  spec.workloads = {"fig1", "fig5"};
  spec.variants = {MebVariant::kFull, MebVariant::kHybrid, MebVariant::kReduced};
  spec.threads = {2, 4};
  spec.shared_slots = {0, 2};
  spec.cycles = 400;
  spec.seed = 23;
  return spec;
}

/// Renders the campaign's shard reports for a given shard count.
std::vector<std::string> shard_renders(const SweepSpec& spec, std::size_t count,
                                       bool json) {
  const CampaignRunner runner;
  std::vector<std::string> out;
  for (std::size_t i = 0; i < count; ++i) {
    const Report report(spec, runner.run(spec, 1, Shard{i, count}));
    out.push_back(json ? report.to_json() : report.to_csv());
  }
  return out;
}

TEST(Shard, CoversPartitionsTheIndexSpace) {
  const Shard a{0, 3}, b{1, 3}, c{2, 3};
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ((a.covers(i) ? 1 : 0) + (b.covers(i) ? 1 : 0) + (c.covers(i) ? 1 : 0), 1)
        << i;
  }
  EXPECT_TRUE(Shard{}.covers(7));  // the trivial shard covers everything
}

TEST(Shard, RunnerFiltersButKeepsCampaignIndicesAndSeeds) {
  const SweepSpec spec = shard_spec();
  const CampaignRunner runner;
  const auto all = runner.run(spec, 1);
  const auto slice = runner.run(spec, 1, Shard{1, 3});
  ASSERT_FALSE(slice.empty());
  std::size_t at = 0;
  for (const auto& rec : slice) {
    EXPECT_EQ(rec.point.index % 3, 1u);
    EXPECT_EQ(rec.seed, point_seed(spec.seed, rec.point.index));
    // The shard's record is bit-equal to the unsharded run's (self-seeded
    // points cannot see which shard ran them).
    const auto& ref = all.at(rec.point.index);
    EXPECT_EQ(rec.result.tokens, ref.result.tokens) << rec.point.label();
    EXPECT_EQ(rec.result.throughput, ref.result.throughput);
    ++at;
  }
  EXPECT_EQ(at, (all.size() + 1) / 3);
}

TEST(Shard, RunnerRejectsOutOfRangeShards) {
  const SweepSpec spec = shard_spec();
  EXPECT_THROW((void)CampaignRunner{}.run(spec, 1, Shard{3, 3}), std::invalid_argument);
  EXPECT_THROW((void)CampaignRunner{}.run(spec, 1, Shard{0, 0}), std::invalid_argument);
}

TEST(Shard, MergedCsvIsByteIdenticalToUnsharded) {
  const SweepSpec spec = shard_spec();
  const Report unsharded(spec, CampaignRunner{}.run(spec, 1));
  for (const std::size_t n : {2u, 3u, 5u}) {
    EXPECT_EQ(merge_csv(shard_renders(spec, n, /*json=*/false)), unsharded.to_csv())
        << n << " shards";
  }
}

TEST(Shard, MergedJsonIsByteIdenticalToUnsharded) {
  const SweepSpec spec = shard_spec();
  const Report unsharded(spec, CampaignRunner{}.run(spec, 1));
  for (const std::size_t n : {2u, 3u}) {
    EXPECT_EQ(merge_json(shard_renders(spec, n, /*json=*/true)), unsharded.to_json())
        << n << " shards";
  }
}

TEST(Shard, MergeOrderOfShardFilesDoesNotMatter) {
  const SweepSpec spec = shard_spec();
  const Report unsharded(spec, CampaignRunner{}.run(spec, 1));
  auto shards = shard_renders(spec, 3, /*json=*/true);
  std::swap(shards[0], shards[2]);
  EXPECT_EQ(merge_json(shards), unsharded.to_json());
}

TEST(Shard, MergeRejectsMissingAndDuplicatedShards) {
  const SweepSpec spec = shard_spec();
  auto shards = shard_renders(spec, 3, /*json=*/false);
  // Missing shard: indices are no longer dense.
  EXPECT_THROW((void)merge_csv({shards[0], shards[2]}), std::invalid_argument);
  // Duplicated shard: overlapping indices.
  EXPECT_THROW((void)merge_csv({shards[0], shards[1], shards[1], shards[2]}),
               std::invalid_argument);
  EXPECT_THROW((void)merge_csv({}), std::invalid_argument);
}

TEST(Shard, MergeRejectsMixedCampaigns) {
  SweepSpec spec = shard_spec();
  auto shards = shard_renders(spec, 2, /*json=*/true);
  spec.seed = 99;
  const auto foreign = shard_renders(spec, 2, /*json=*/true);
  EXPECT_THROW((void)merge_json({shards[0], foreign[1]}), std::invalid_argument);
}

TEST(Shard, FailedPointsSurviveTheRoundTrip) {
  WorkloadSet set;
  Workload w;
  w.name = "boom";
  w.description = "throws for S=4";
  w.evaluate = [](const SweepPoint& p, sim::Cycle cycles,
                  std::uint64_t) -> WorkloadResult {
    if (p.threads == 4) throw std::runtime_error("injected, with a \"quote\"");
    WorkloadResult r;
    r.tokens = 1 + p.threads;
    r.cycles = cycles;
    r.throughput = 1.0 / static_cast<double>(p.threads);
    return r;
  };
  set.add(std::move(w));

  SweepSpec spec;
  spec.workloads = {"boom"};
  spec.variants = {MebVariant::kFull};
  spec.threads = {2, 4, 8};
  const CampaignRunner runner{set};
  const Report unsharded(spec, runner.run(spec, 1));
  std::vector<std::string> csvs, jsons;
  for (std::size_t i = 0; i < 2; ++i) {
    const Report shard(spec, runner.run(spec, 1, Shard{i, 2}));
    csvs.push_back(shard.to_csv());
    jsons.push_back(shard.to_json());
  }
  EXPECT_EQ(merge_csv(csvs), unsharded.to_csv());
  EXPECT_EQ(merge_json(jsons), unsharded.to_json());
}

/// The committed golden campaign, reassembled from shards: the
/// acceptance-level check that --shard/merge reproduce a known report
/// byte-identically (spec mirrored from test_report.cpp's golden_spec).
TEST(Shard, GoldenCampaignReassemblesFromShards) {
  SweepSpec spec;
  spec.workloads = {"fig1"};
  spec.variants = {MebVariant::kFull, MebVariant::kReduced};
  spec.threads = {1, 2, 4};
  spec.cycles = 300;
  spec.seed = 7;

  const auto read_golden = [](const std::string& name) {
    const std::string path =
        std::string(MTE_SOURCE_DIR) + "/tests/dse/golden/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in) << "missing golden file " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };

  EXPECT_EQ(merge_csv(shard_renders(spec, 2, /*json=*/false)),
            read_golden("campaign6.csv"));
  EXPECT_EQ(merge_json(shard_renders(spec, 3, /*json=*/true)),
            read_golden("campaign6.json"));
}

}  // namespace
}  // namespace mte::dse
