#include <gtest/gtest.h>

#include <set>

#include "dse/sweep_spec.hpp"
#include "dse/workloads.hpp"

namespace mte::dse {
namespace {

TEST(SweepSpec, DefaultAxesEnumerate) {
  SweepSpec spec;  // fig5 x {full, reduced} x {1,2,4,8} x rr x event
  const auto points = spec.enumerate();
  EXPECT_EQ(points.size(), 8u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].workload, "fig5");
    EXPECT_EQ(points[i].shared_slots, 0u);  // no hybrid in the axis
  }
}

TEST(SweepSpec, CapacityAxisOnlyVariesHybrid) {
  SweepSpec spec;
  spec.workloads = {"fig5"};
  spec.variants = {MebVariant::kFull, MebVariant::kHybrid, MebVariant::kReduced};
  spec.threads = {4};
  spec.shared_slots = {0, 1, 2};
  const auto points = spec.enumerate();
  // full: 1 point, hybrid: 3 (K in {0,1,2}), reduced: 1.
  ASSERT_EQ(points.size(), 5u);
  EXPECT_EQ(points[0].variant, MebVariant::kFull);
  EXPECT_EQ(points[0].capacity_slots(), 8u);
  EXPECT_EQ(points[1].variant, MebVariant::kHybrid);
  EXPECT_EQ(points[1].shared_slots, 0u);
  EXPECT_EQ(points[3].shared_slots, 2u);
  EXPECT_EQ(points[3].capacity_slots(), 6u);
  EXPECT_EQ(points[4].variant, MebVariant::kReduced);
  EXPECT_EQ(points[4].capacity_slots(), 5u);
}

TEST(SweepSpec, HybridSlotsAboveThreadCountArePruned) {
  SweepSpec spec;
  spec.workloads = {"fig1"};
  spec.variants = {MebVariant::kHybrid};
  spec.threads = {2};
  spec.shared_slots = {0, 1, 2, 3, 8};
  const auto points = spec.enumerate();
  ASSERT_EQ(points.size(), 3u);  // K in {0, 1, 2}; K > S dropped
  for (const auto& p : points) EXPECT_LE(p.shared_slots, p.threads);
}

TEST(SweepSpec, WorkloadTraitsPinUnsupportedAxes) {
  SweepSpec spec;
  spec.workloads = {"md5", "fig1"};
  spec.variants = {MebVariant::kFull, MebVariant::kHybrid};
  spec.threads = {2};
  spec.shared_slots = {1};
  spec.arbiters = {mt::ArbiterKind::kRoundRobin, mt::ArbiterKind::kMatrix};
  spec.kernels = {sim::KernelKind::kEventDriven, sim::KernelKind::kNaive};
  const auto points = spec.enumerate();
  // md5: no hybrid, arbiter pinned to round-robin, kernel axis kept ->
  // full x 2 kernels = 2. fig1: (full + hybrid) x 2 arbiters x 2 kernels = 8.
  ASSERT_EQ(points.size(), 10u);
  std::size_t md5_points = 0;
  for (const auto& p : points) {
    if (p.workload == "md5") {
      ++md5_points;
      EXPECT_EQ(p.variant, MebVariant::kFull);
      EXPECT_EQ(p.arbiter, mt::ArbiterKind::kRoundRobin);
    }
  }
  EXPECT_EQ(md5_points, 2u);
}

TEST(SweepSpec, UserConstraintsPrune) {
  SweepSpec spec;
  spec.workloads = {"fig5"};
  spec.threads = {1, 2, 4, 8};
  spec.constrain([](const SweepPoint& p) { return p.threads >= 4; });
  spec.constrain(
      [](const SweepPoint& p) { return p.variant == MebVariant::kReduced; });
  const auto points = spec.enumerate();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].threads, 4u);
  EXPECT_EQ(points[1].threads, 8u);
  // Indices stay dense after pruning.
  EXPECT_EQ(points[0].index, 0u);
  EXPECT_EQ(points[1].index, 1u);
}

TEST(SweepSpec, UnknownWorkloadThrows) {
  SweepSpec spec;
  spec.workloads = {"fig5", "nope"};
  EXPECT_THROW((void)spec.enumerate(), std::invalid_argument);
}

TEST(SweepSpec, EmptyAxisThrows) {
  SweepSpec spec;
  spec.threads.clear();
  EXPECT_THROW((void)spec.enumerate(), std::invalid_argument);
}

TEST(SweepSpec, PointSeedsAreDecorrelatedAndStable) {
  // Stable across runs (golden values guard the derivation) and distinct
  // across neighbouring points and seeds.
  EXPECT_EQ(point_seed(1, 0), point_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    for (std::size_t i = 0; i < 64; ++i) seen.insert(point_seed(s, i));
  }
  EXPECT_EQ(seen.size(), 4u * 64u);
}

TEST(SweepSpec, LabelIsStable) {
  SweepPoint p;
  p.workload = "fig5";
  p.variant = MebVariant::kHybrid;
  p.threads = 4;
  p.shared_slots = 2;
  p.arbiter = mt::ArbiterKind::kMatrix;
  p.kernel = sim::KernelKind::kNaive;
  EXPECT_EQ(p.label(), "fig5/hybrid/s4/k2/matrix/naive");
}

TEST(SweepSpec, ParseRoundTripsSerialize) {
  const std::string text =
      "# campaign\n"
      "workloads fig1 fig5\n"
      "variants full hybrid reduced\n"
      "threads 1 2 4\n"
      "shared_slots 0 1\n"
      "arbiters round_robin matrix\n"
      "kernels event naive\n"
      "cycles 1234\n"
      "seed 99\n";
  const SweepSpec spec = SweepSpec::parse(text);
  EXPECT_EQ(spec.workloads, (std::vector<std::string>{"fig1", "fig5"}));
  EXPECT_EQ(spec.variants.size(), 3u);
  EXPECT_EQ(spec.threads, (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_EQ(spec.cycles, 1234u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(SweepSpec::parse(spec.serialize()).serialize(), spec.serialize());
}

TEST(SweepSpec, EmptyAxisRoundTripsThroughSerialize) {
  // An empty shared_slots axis is legal without the hybrid variant;
  // serialize() emits the bare key and parse() must accept it back.
  SweepSpec spec;
  spec.shared_slots.clear();
  const SweepSpec back = SweepSpec::parse(spec.serialize());
  EXPECT_TRUE(back.shared_slots.empty());
  EXPECT_EQ(back.serialize(), spec.serialize());
  EXPECT_EQ(back.enumerate().size(), spec.enumerate().size());
}

TEST(SweepSpec, ParseRejectsJunk) {
  EXPECT_THROW((void)SweepSpec::parse("variants full sideways\n"),
               std::invalid_argument);
  EXPECT_THROW((void)SweepSpec::parse("threads 4x\n"), std::invalid_argument);
  EXPECT_THROW((void)SweepSpec::parse("wat 1\n"), std::invalid_argument);
  EXPECT_THROW((void)SweepSpec::parse("cycles\n"), std::invalid_argument);
}

TEST(SweepSpec, DefaultCliCampaignHasAtLeast48Points) {
  // The acceptance-bar campaign: variant x S x capacity x arbiter x
  // workload, all varied at once.
  SweepSpec spec;
  spec.workloads = {"fig1", "fig5"};
  spec.variants = {MebVariant::kFull, MebVariant::kHybrid, MebVariant::kReduced};
  spec.threads = {1, 2, 4, 8};
  spec.shared_slots = {0, 1};
  spec.arbiters = {mt::ArbiterKind::kRoundRobin, mt::ArbiterKind::kOblivious};
  const auto points = spec.enumerate();
  EXPECT_GE(points.size(), 48u);
}

}  // namespace
}  // namespace mte::dse
