#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "dse/campaign.hpp"
#include "dse/report.hpp"
#include "dse/sweep_spec.hpp"

namespace mte::dse {
namespace {

PointRecord make_record(std::size_t index, double throughput, double les,
                        std::string error = "") {
  PointRecord r;
  r.point.index = index;
  r.point.workload = "fig5";
  r.point.threads = 4;
  r.result.throughput = throughput;
  r.result.tokens = static_cast<std::uint64_t>(throughput * 1000);
  r.result.cycles = 1000;
  r.les = les;
  r.mhz = 100.0;
  r.error = std::move(error);
  return r;
}

TEST(Report, ParetoFrontierKeepsOnlyUndominatedPoints) {
  // (throughput, les): 2 dominates 1 (more throughput, fewer LEs);
  // 0 and 2 trade off; 3 is strictly worst.
  const Report report(SweepSpec{}, {
                                       make_record(0, 0.9, 500),
                                       make_record(1, 0.5, 400),
                                       make_record(2, 0.7, 300),
                                       make_record(3, 0.1, 900),
                                   });
  EXPECT_EQ(report.pareto(), (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(report.is_pareto(0));
  EXPECT_FALSE(report.is_pareto(1));
  EXPECT_TRUE(report.is_pareto(2));
  EXPECT_FALSE(report.is_pareto(3));
  EXPECT_EQ(report.best_throughput()->point.index, 0u);
  EXPECT_EQ(report.cheapest()->point.index, 2u);
}

TEST(Report, ExactDuplicatesKeepExactlyOneFrontierPoint) {
  const Report report(SweepSpec{}, {
                                       make_record(0, 0.5, 400),
                                       make_record(1, 0.5, 400),
                                   });
  EXPECT_EQ(report.pareto(), (std::vector<std::size_t>{0}));
}

TEST(Report, FailedPointsNeverQualifyForTheFrontier) {
  const Report report(SweepSpec{}, {
                                       make_record(0, 9.9, 1, "boom"),
                                       make_record(1, 0.5, 400),
                                   });
  EXPECT_EQ(report.pareto(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(report.best_throughput()->point.index, 1u);
}

TEST(Report, AllPointsFailedMeansNoBest) {
  const Report report(SweepSpec{}, {make_record(0, 1.0, 100, "boom")});
  EXPECT_TRUE(report.pareto().empty());
  EXPECT_EQ(report.best_throughput(), nullptr);
  EXPECT_EQ(report.cheapest(), nullptr);
}

TEST(Report, ParetoSpeaksPointIndicesNotVectorPositions) {
  // A filtered / merged record set has point indices that don't coincide
  // with vector positions; the frontier and renders must follow the
  // indices (regression: pareto_ used to store positions while the
  // renderers queried is_pareto(point.index)).
  const Report report(SweepSpec{}, {
                                       make_record(7, 0.9, 500),
                                       make_record(3, 0.7, 300),
                                   });
  EXPECT_EQ(report.pareto(), (std::vector<std::size_t>{3, 7}));
  EXPECT_TRUE(report.is_pareto(3));
  EXPECT_TRUE(report.is_pareto(7));
  EXPECT_FALSE(report.is_pareto(0));
  EXPECT_NE(report.to_json().find("\"pareto\": [3, 7]"), std::string::npos)
      << report.to_json();
}

TEST(Report, CsvEscapesQuotesAndNewlinesInErrors) {
  // BuildError what()s are multi-line and can quote node names; every CSV
  // record must still be exactly one well-formed line.
  const Report report(
      SweepSpec{},
      {make_record(0, 0.0, 0.0, "cyclic:\n- fork \"f\" -> join \"j\"")});
  const std::string csv = report.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2)  // header + 1 record
      << csv;
  EXPECT_NE(csv.find("\"cyclic: - fork \"\"f\"\" -> join \"\"j\"\"\""),
            std::string::npos)
      << csv;
}

TEST(Report, CsvSchemaIsPinned) {
  // Adding/renaming/reordering a column must bump kReportSchemaVersion —
  // this test and the committed golden files are the drift gate.
  EXPECT_EQ(Report::csv_header(),
            "schema_version,index,workload,variant,threads,shared_slots,"
            "capacity_slots,arbiter,kernel,seed,cycles,tokens,throughput,"
            "mean_wait,les,mhz,throughput_per_kle,static_bound,pareto,"
            "failure_kind,error");
  EXPECT_EQ(Report::json_point_fields().size(), 20u);
  EXPECT_EQ(kReportSchemaVersion, 3);
}

// --- the golden 6-point campaign --------------------------------------------

/// The spec behind tests/dse/golden/campaign6.{csv,json}. Regenerate with
/// (one line):
///   mte_dse --workloads fig1 --variants full,reduced --threads 1,2,4
///           --arbiters round_robin --kernels event --cycles 300 --seed 7
///           --quiet --csv tests/dse/golden/campaign6.csv
///                   --json tests/dse/golden/campaign6.json
SweepSpec golden_spec() {
  SweepSpec spec;
  spec.workloads = {"fig1"};
  spec.variants = {MebVariant::kFull, MebVariant::kReduced};
  spec.threads = {1, 2, 4};
  spec.cycles = 300;
  spec.seed = 7;
  return spec;
}

std::string read_golden(const std::string& name) {
  const std::string path = std::string(MTE_SOURCE_DIR) + "/tests/dse/golden/" + name;
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "missing golden file " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(Report, GoldenCampaignCsvMatches) {
  const SweepSpec spec = golden_spec();
  ASSERT_EQ(spec.enumerate().size(), 6u);
  const Report report(spec, CampaignRunner{}.run(spec, 1));
  EXPECT_EQ(report.to_csv(), read_golden("campaign6.csv"))
      << "report CSV drifted from the golden file; if the change is "
         "intentional, bump kReportSchemaVersion and regenerate (command in "
         "golden_spec() above)";
}

TEST(Report, GoldenCampaignJsonMatches) {
  const SweepSpec spec = golden_spec();
  const Report report(spec, CampaignRunner{}.run(spec, 1));
  EXPECT_EQ(report.to_json(), read_golden("campaign6.json"))
      << "report JSON drifted from the golden file; if the change is "
         "intentional, bump kReportSchemaVersion and regenerate (command in "
         "golden_spec() above)";
}

}  // namespace
}  // namespace mte::dse
