// Campaign warm-starts: a cold run with a CheckpointPolicy drops one
// snapshot per point at the warmup cycle; a second run with restore=true
// resumes every point from its snapshot and must produce a byte-identical
// report (probe statistics restore with the snapshot, so even the
// warmup-window metrics match exactly).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "dse/campaign.hpp"
#include "dse/report.hpp"

namespace {

using namespace mte;
namespace fs = std::filesystem;

dse::SweepSpec small_spec() {
  dse::SweepSpec spec;
  spec.workloads = {"fig1", "fig5"};
  spec.variants = {dse::MebVariant::kFull, dse::MebVariant::kReduced};
  spec.threads = {2, 4};
  spec.cycles = 600;
  spec.seed = 7;
  return spec;
}

class CampaignCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each gtest case as its own process, possibly in
    // parallel — the directory must be unique per test AND per process
    // or concurrent SetUp/TearDown remove_all calls race.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("mte_dse_ckpt_") + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CampaignCheckpointTest, WarmReportByteIdenticalToCold) {
  const auto spec = small_spec();
  const dse::CampaignRunner runner;

  dse::CheckpointPolicy cold{.dir = dir_.string(), .warmup = 300, .restore = false};
  const auto cold_records = runner.run(spec, 1, {}, cold);
  ASSERT_FALSE(cold_records.empty());
  for (const auto& r : cold_records) {
    ASSERT_TRUE(r.ok()) << r.point.label() << ": " << r.error;
    EXPECT_TRUE(fs::exists(cold.snapshot_path(r.point, r.seed))) << r.point.label();
  }

  dse::CheckpointPolicy warm = cold;
  warm.restore = true;
  const auto warm_records = runner.run(spec, 1, {}, warm);
  ASSERT_EQ(warm_records.size(), cold_records.size());
  for (const auto& r : warm_records) {
    ASSERT_TRUE(r.ok()) << r.point.label() << ": " << r.error;
  }

  const dse::Report cold_report(spec, cold_records);
  const dse::Report warm_report(spec, warm_records);
  EXPECT_EQ(cold_report.to_csv(), warm_report.to_csv());
  EXPECT_EQ(cold_report.to_json(), warm_report.to_json());
}

TEST_F(CampaignCheckpointTest, CheckpointedMatchesPlainEvaluation) {
  const auto spec = small_spec();
  const dse::CampaignRunner runner;

  const auto plain = runner.run(spec, 1);
  dse::CheckpointPolicy cold{.dir = dir_.string(), .warmup = 300, .restore = false};
  const auto ckpt = runner.run(spec, 1, {}, cold);
  const dse::Report plain_report(spec, plain);
  const dse::Report ckpt_report(spec, ckpt);
  EXPECT_EQ(plain_report.to_csv(), ckpt_report.to_csv())
      << "snapshotting mid-run must not perturb the simulation";
}

TEST_F(CampaignCheckpointTest, MissingSnapshotFailsTheRecordLoudly) {
  const auto spec = small_spec();
  const dse::CampaignRunner runner;
  dse::CheckpointPolicy warm{.dir = dir_.string(), .warmup = 300, .restore = true};
  const auto records = runner.run(spec, 1, {}, warm);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_FALSE(r.ok()) << r.point.label();
    EXPECT_NE(r.error.find("checkpoint restore"), std::string::npos) << r.error;
  }
}

TEST_F(CampaignCheckpointTest, EnginesWithoutSessionsEvaluateNormally) {
  dse::SweepSpec spec;
  spec.workloads = {"md5"};
  spec.variants = {dse::MebVariant::kFull};
  spec.threads = {2};
  spec.seed = 7;
  const dse::CampaignRunner runner;
  // restore=true with no snapshots on disk: md5 has no make_session hook,
  // so the policy is ignored and the point still evaluates.
  dse::CheckpointPolicy warm{.dir = dir_.string(), .warmup = 300, .restore = true};
  const auto records = runner.run(spec, 1, {}, warm);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].ok()) << records[0].error;
}

}  // namespace
