#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "dse/campaign.hpp"
#include "dse/report.hpp"
#include "dse/sweep_spec.hpp"
#include "dse/workloads.hpp"

namespace mte::dse {
namespace {

SweepSpec small_netlist_spec() {
  SweepSpec spec;
  spec.workloads = {"fig1", "fig5"};
  spec.variants = {MebVariant::kFull, MebVariant::kHybrid, MebVariant::kReduced};
  spec.threads = {2, 4};
  spec.shared_slots = {0, 2};
  spec.cycles = 400;
  spec.seed = 11;
  return spec;
}

TEST(CampaignRunner, EvaluatesEveryPointInIndexOrder) {
  const SweepSpec spec = small_netlist_spec();
  const auto points = spec.enumerate();
  const auto records = CampaignRunner{}.run(spec, 1);
  ASSERT_EQ(records.size(), points.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].point.index, i);
    EXPECT_TRUE(records[i].ok()) << records[i].error;
    EXPECT_GT(records[i].result.tokens, 0u) << records[i].point.label();
    EXPECT_GT(records[i].les, 0.0);
    EXPECT_GT(records[i].mhz, 0.0);
    EXPECT_EQ(records[i].seed, point_seed(spec.seed, i));
  }
}

TEST(CampaignRunner, ReportIsByteIdenticalAcrossWorkerCounts) {
  // The determinism contract: per-point seeds come from (campaign seed,
  // point index), never from scheduling, so 1 worker and N workers must
  // produce bit-equal campaigns — CSV and JSON compare as strings.
  const SweepSpec spec = small_netlist_spec();
  const CampaignRunner runner;
  const Report serial(spec, runner.run(spec, 1));
  for (const std::size_t workers : {2u, 4u, 7u}) {
    const Report parallel(spec, runner.run(spec, workers));
    EXPECT_EQ(serial.to_csv(), parallel.to_csv()) << workers << " workers";
    EXPECT_EQ(serial.to_json(), parallel.to_json()) << workers << " workers";
    EXPECT_EQ(serial.metrics_csv(), parallel.metrics_csv()) << workers << " workers";
  }
}

TEST(CampaignRunner, MetricsCsvCarriesKernelCountersPerPoint) {
  // The --metrics-out artifact: one row per point with the kernel-side
  // counters, under its own header (the schema-gated main report is a
  // separate file and stays untouched).
  const SweepSpec spec = small_netlist_spec();
  const Report report(spec, CampaignRunner{}.run(spec, 1));
  const std::string csv = report.metrics_csv();
  EXPECT_EQ(csv.rfind(Report::metrics_csv_header() + "\n", 0), 0u);
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, report.records().size() + 1);
  for (const auto& r : report.records()) {
    EXPECT_GT(r.result.kernel.sched_evals, 0u) << r.point.label();
    EXPECT_GT(r.result.kernel.ticks, 0u) << r.point.label();
    EXPECT_FALSE(r.result.kernel.demoted_to_naive) << r.point.label();
  }
}

TEST(CampaignRunner, SameSeedSameReportAcrossRuns) {
  const SweepSpec spec = small_netlist_spec();
  const CampaignRunner runner;
  const Report a(spec, runner.run(spec, 2));
  const Report b(spec, runner.run(spec, 2));
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(CampaignRunner, DifferentCampaignSeedChangesInjectionOutcomes) {
  // fig1/fig5 drive fractional injection from the per-point RNG, so a
  // different campaign seed must actually reach the simulations.
  SweepSpec spec = small_netlist_spec();
  const CampaignRunner runner;
  const Report a(spec, runner.run(spec, 1));
  spec.seed = 12;
  const Report b(spec, runner.run(spec, 1));
  EXPECT_NE(a.to_csv(), b.to_csv());
}

TEST(CampaignRunner, ThrowingPointBecomesFailedRecordNotAbort) {
  WorkloadSet set;
  Workload w;
  w.name = "boom";
  w.description = "throws for S=4";
  w.evaluate = [](const SweepPoint& p, sim::Cycle cycles,
                  std::uint64_t) -> WorkloadResult {
    if (p.threads == 4) throw std::runtime_error("injected failure");
    WorkloadResult r;
    r.tokens = 1;
    r.cycles = cycles;
    r.throughput = 1.0 / static_cast<double>(cycles);
    return r;
  };
  set.add(std::move(w));

  SweepSpec spec;
  spec.workloads = {"boom"};
  spec.variants = {MebVariant::kFull};
  spec.threads = {2, 4, 8};
  const auto records = CampaignRunner{set}.run(spec, 2);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].ok());
  EXPECT_TRUE(records[0].failure_kind.empty());
  EXPECT_FALSE(records[1].ok());
  EXPECT_EQ(records[1].failure_kind, "exception");
  EXPECT_EQ(records[1].error, "injected failure");
  EXPECT_TRUE(records[2].ok());

  // Failed points render (with the error column set) and never reach the
  // Pareto frontier.
  const Report report(spec, records);
  EXPECT_FALSE(report.is_pareto(1));
  EXPECT_NE(report.to_csv().find("injected failure"), std::string::npos);
  EXPECT_NE(report.to_json().find("injected failure"), std::string::npos);
}

TEST(CampaignRunner, DeadlockPointIsQuarantinedWithReproArtifact) {
  // An intentionally deadlocking point under the robustness policy is
  // QUARANTINED: the campaign completes, the point becomes a failed
  // record classified "watchdog" with the MTE110 diagnosis in its error,
  // and the artifact directory holds a committed repro plus the watchdog's
  // post-mortem bundle. Healthy points in the same campaign are untouched.
  SweepSpec spec;
  spec.workloads = {"fig1", "deadlock"};
  spec.variants = {MebVariant::kFull};
  spec.threads = {2};
  spec.cycles = 400;
  spec.seed = 11;

  RobustnessPolicy robust;
  robust.monitors = true;
  robust.watchdog = 100;
  robust.artifact_dir = ::testing::TempDir() + "mte_quarantine";
  std::filesystem::remove_all(robust.artifact_dir);

  const auto records = CampaignRunner{}.run(spec, 1, {}, {}, robust);
  ASSERT_EQ(records.size(), 2u);
  const PointRecord* healthy = nullptr;
  const PointRecord* quarantined = nullptr;
  for (const auto& r : records) {
    (r.point.workload == "deadlock" ? quarantined : healthy) = &r;
  }
  ASSERT_NE(healthy, nullptr);
  ASSERT_NE(quarantined, nullptr);

  EXPECT_TRUE(healthy->ok()) << healthy->error;
  EXPECT_TRUE(healthy->failure_kind.empty());
  EXPECT_GT(healthy->result.tokens, 0u);

  EXPECT_FALSE(quarantined->ok());
  EXPECT_EQ(quarantined->failure_kind, "watchdog");
  EXPECT_NE(quarantined->error.find("MTE110"), std::string::npos)
      << quarantined->error;

  const std::string dir =
      robust.point_dir(quarantined->point, quarantined->seed);
  EXPECT_TRUE(std::filesystem::exists(dir + "/repro.txt")) << dir;
  bool has_snapshot = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    has_snapshot = has_snapshot || (file.rfind("postmortem_c", 0) == 0 &&
                                    file.find(".snap") != std::string::npos);
  }
  EXPECT_TRUE(has_snapshot) << "no post-mortem snapshot in " << dir;
}

TEST(CampaignRunner, MonitorsDoNotPerturbSurvivingPoints) {
  // The quarantine contract's other half: on a campaign with no failures,
  // running under monitors + watchdog produces BYTE-identical reports —
  // monitors never write wires or consume workload randomness, across all
  // MEB variants (full, hybrid, reduced).
  const SweepSpec spec = small_netlist_spec();
  const CampaignRunner runner;
  const Report plain(spec, runner.run(spec, 1));
  RobustnessPolicy robust;
  robust.monitors = true;
  robust.watchdog = 200;
  const Report hardened(spec, runner.run(spec, 1, {}, {}, robust));
  for (const auto& r : hardened.records()) {
    EXPECT_TRUE(r.ok()) << r.point.label() << ": " << r.error;
  }
  EXPECT_EQ(plain.to_csv(), hardened.to_csv());
  EXPECT_EQ(plain.to_json(), hardened.to_json());
  EXPECT_EQ(plain.metrics_csv(), hardened.metrics_csv());
}

TEST(CampaignRunner, OwnsItsWorkloadSet) {
  // Constructing from a temporary set must be safe: the runner copies it
  // (a reference member would dangle by the time run() executes).
  WorkloadSet set;
  Workload w;
  w.name = "unit";
  w.evaluate = [](const SweepPoint&, sim::Cycle cycles, std::uint64_t) {
    WorkloadResult r;
    r.tokens = 1;
    r.cycles = cycles;
    r.throughput = 1.0;
    return r;
  };
  set.add(std::move(w));

  SweepSpec spec;
  spec.workloads = {"unit"};
  spec.variants = {MebVariant::kFull};
  spec.threads = {1};
  const CampaignRunner runner{WorkloadSet{set}};  // temporary argument
  const auto records = runner.run(spec, 1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].ok()) << records[0].error;
}

TEST(CampaignRunner, HandBuiltEnginesRunUnderBothKernels) {
  // md5 and processor are the paper's Sec. V engines; a tiny sweep checks
  // they evaluate cleanly under both settle kernels. Two campaigns that
  // differ only in the kernel axis assign the same indices — hence the
  // same per-point seeds — so kernel choice must not change the results,
  // only the wall-clock to get them.
  SweepSpec spec;
  spec.workloads = {"md5", "processor"};
  spec.variants = {MebVariant::kFull, MebVariant::kReduced};
  spec.threads = {4};
  spec.kernels = {sim::KernelKind::kEventDriven};
  const auto event_records = CampaignRunner{}.run(spec, 2);
  spec.kernels = {sim::KernelKind::kNaive};
  const auto naive_records = CampaignRunner{}.run(spec, 2);
  ASSERT_EQ(event_records.size(), 4u);
  ASSERT_EQ(naive_records.size(), 4u);
  for (std::size_t i = 0; i < event_records.size(); ++i) {
    const PointRecord& e = event_records[i];
    const PointRecord& n = naive_records[i];
    ASSERT_TRUE(e.ok()) << e.point.label() << ": " << e.error;
    ASSERT_TRUE(n.ok()) << n.point.label() << ": " << n.error;
    EXPECT_GT(e.result.throughput, 0.0) << e.point.label();
    EXPECT_EQ(e.result.tokens, n.result.tokens) << e.point.label();
    EXPECT_EQ(e.result.cycles, n.result.cycles) << e.point.label();
    EXPECT_EQ(e.les, n.les) << e.point.label();
  }
}

}  // namespace
}  // namespace mte::dse
