// The static screening mode: CampaignRunner::run(..., screen = true)
// must skip a substantial share of the default campaign without touching
// the Pareto frontier — the screening contract mte_dse --screen exposes.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "dse/campaign.hpp"
#include "dse/report.hpp"
#include "dse/sweep_spec.hpp"

namespace mte::dse {
namespace {

/// The mte_dse default preset (64 points) at a reduced cycle budget.
SweepSpec default_spec(sim::Cycle cycles) {
  SweepSpec spec;
  spec.workloads = {"fig1", "fig5"};
  spec.variants = {MebVariant::kFull, MebVariant::kHybrid, MebVariant::kReduced};
  spec.threads = {1, 2, 4, 8};
  spec.shared_slots = {0, 1};
  spec.arbiters = {mt::ArbiterKind::kRoundRobin, mt::ArbiterKind::kOblivious};
  spec.cycles = cycles;
  return spec;
}

TEST(Screening, SkipsDominatedPointsAndKeepsTheParetoFrontier) {
  const SweepSpec spec = default_spec(500);
  const CampaignRunner runner;
  const Report full(spec, runner.run(spec, 1));
  const Report screened(spec, runner.run(spec, 1, {}, {}, {}, /*screen=*/true));
  ASSERT_EQ(full.records().size(), 64u);
  ASSERT_EQ(screened.records().size(), 64u);

  std::size_t skipped = 0;
  for (std::size_t i = 0; i < screened.records().size(); ++i) {
    const PointRecord& s = screened.records()[i];
    if (s.failure_kind == "screened") {
      ++skipped;
      EXPECT_FALSE(s.ok());
      EXPECT_NE(s.error.find("screened: static bound"), std::string::npos);
      // Screened points are still priced: bound and area-model figures.
      EXPECT_GE(s.static_bound, 0.0);
      EXPECT_GT(s.les, 0.0);
      EXPECT_NEAR(s.les, full.records()[i].les, 0.5)
          << "the screening pre-pass priced a different design than the "
             "simulation at " << s.point.label();
    } else {
      // Simulated points are byte-equal to the unscreened run.
      EXPECT_EQ(s.result.tokens, full.records()[i].result.tokens)
          << s.point.label();
    }
  }
  // The acceptance floor: at least 20% of the campaign never simulates.
  EXPECT_GE(skipped, 64u / 5) << "screening skipped too few points";
  EXPECT_LT(skipped, 64u) << "screening must simulate at least one point";

  // The headline invariant: the frontier is identical.
  EXPECT_EQ(full.pareto(), screened.pareto());
}

TEST(Screening, EveryRecordCarriesItsStaticBound) {
  // run_point (no screening) also prices every netlist point, so plain
  // campaigns export the static_bound column too — and the bound is an
  // upper bound on what the point then measured.
  SweepSpec spec = default_spec(400);
  spec.threads = {1, 4};
  const auto records = CampaignRunner{}.run(spec, 1);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_GE(r.static_bound, 0.0) << r.point.label();
    EXPECT_LE(r.result.throughput, r.static_bound + 1e-9) << r.point.label();
  }
}

TEST(Screening, RejectsSharding) {
  const SweepSpec spec = default_spec(100);
  Shard shard;
  shard.index = 0;
  shard.count = 2;
  EXPECT_THROW(CampaignRunner{}.run(spec, 1, shard, {}, {}, /*screen=*/true),
               std::invalid_argument);
}

}  // namespace
}  // namespace mte::dse
