// End-to-end tests of the mte_prof binary: exit codes, metrics snapshot
// byte-identity across runs at the same seed, trace export, and output
// format selection. Drives the real executable (path injected by CMake
// as MTE_PROF_BIN).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

/// Runs mte_prof with `args`, capturing stdout (stderr passes through).
CliResult run_prof(const std::string& args) {
  const std::string cmd = std::string(MTE_PROF_BIN) + " " + args;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  CliResult r;
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return r;
  }
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) r.output += buf.data();
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string example(const std::string& name) {
  return std::string(MTE_SOURCE_DIR) + "/examples/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(MteProfCli, RunsExampleAndPrintsProfile) {
  const CliResult r = run_prof("--cycles 200 " + example("fig5_pipeline.enl"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("instances"), std::string::npos);  // profile table
  EXPECT_NE(r.output.find("settle_ms"), std::string::npos);
}

TEST(MteProfCli, MetricsSnapshotIsByteIdenticalAcrossRuns) {
  // The acceptance contract: two runs at the same seed produce
  // byte-identical metrics files (the default snapshot excludes every
  // wall-clock row).
  const std::string a_path = ::testing::TempDir() + "mte_prof_a.json";
  const std::string b_path = ::testing::TempDir() + "mte_prof_b.json";
  const std::string cmd = "--cycles 300 --seed 7 --quiet --metrics ";
  EXPECT_EQ(run_prof(cmd + a_path + " " + example("fig5_pipeline.enl")).exit_code, 0);
  EXPECT_EQ(run_prof(cmd + b_path + " " + example("fig5_pipeline.enl")).exit_code, 0);
  const std::string a = slurp(a_path);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(b_path));
  EXPECT_NE(a.find("sim.settle_work"), std::string::npos);
  EXPECT_NE(a.find("channel."), std::string::npos);
  EXPECT_EQ(a.find("settle_seconds"), std::string::npos);  // timing excluded
}

TEST(MteProfCli, MetricsCsvSuffixSelectsCsv) {
  const std::string path = ::testing::TempDir() + "mte_prof_m.csv";
  const CliResult r = run_prof("--cycles 100 --quiet --metrics " + path + " " +
                               example("st_diamond.enl"));
  EXPECT_EQ(r.exit_code, 0);
  const std::string csv = slurp(path);
  EXPECT_EQ(csv.rfind("name,category,value\n", 0), 0u);
}

TEST(MteProfCli, TraceExportIsPerfettoShaped) {
  const std::string path = ::testing::TempDir() + "mte_prof_t.json";
  const CliResult r = run_prof("--cycles 100 --quiet --trace " + path + " " +
                               example("fig5_pipeline.enl"));
  EXPECT_EQ(r.exit_code, 0);
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"us_per_cycle\":1000"), std::string::npos);
}

TEST(MteProfCli, TraceIsByteIdenticalAcrossRuns) {
  const std::string a_path = ::testing::TempDir() + "mte_prof_ta.json";
  const std::string b_path = ::testing::TempDir() + "mte_prof_tb.json";
  const std::string tail = " --seed 3 --quiet " + example("fig5_pipeline.enl");
  EXPECT_EQ(run_prof("--cycles 150 --trace " + a_path + tail).exit_code, 0);
  EXPECT_EQ(run_prof("--cycles 150 --trace " + b_path + tail).exit_code, 0);
  const std::string a = slurp(a_path);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(b_path));
}

TEST(MteProfCli, BadFlagExitsTwo) {
  EXPECT_EQ(run_prof("--no-such-flag x.enl").exit_code, 2);
}

TEST(MteProfCli, MissingNetlistExitsTwo) {
  EXPECT_EQ(run_prof("/nonexistent/netlist.enl").exit_code, 2);
}

}  // namespace
