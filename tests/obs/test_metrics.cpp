// MetricsRegistry unit tests: pull semantics, category filtering, fixed
// renderer formats and the disabled path. The determinism and
// no-observer-effect contracts against a live simulator are covered by
// test_obs_integration.cpp.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace mte::obs {
namespace {

TEST(MetricsRegistry, SourcesRunOnlyAtSnapshotTime) {
  MetricsRegistry reg;
  int calls = 0;
  reg.add_source([&calls](MetricsSink& sink) {
    ++calls;
    sink.counter("a.count", 7);
  });
  EXPECT_EQ(calls, 0);  // pull model: registration costs nothing
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(snap.count("a.count"), 7u);
}

TEST(MetricsRegistry, DisabledRegistrySkipsSourcesEntirely) {
  MetricsRegistry reg;
  int calls = 0;
  reg.add_source([&calls](MetricsSink& sink) {
    ++calls;
    sink.counter("a", 1);
  });
  reg.set_enabled(false);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(snap.rows().empty());
  EXPECT_EQ(snap.to_csv(), "name,category,value\n");
}

TEST(MetricsRegistry, RemoveSourceDropsItsRows) {
  MetricsRegistry reg;
  const std::size_t id = reg.add_source(
      [](MetricsSink& sink) { sink.counter("gone", 1); });
  reg.add_source([](MetricsSink& sink) { sink.counter("kept", 2); });
  reg.remove_source(id);
  EXPECT_EQ(reg.source_count(), 1u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("gone"), nullptr);
  EXPECT_EQ(snap.count("kept"), 2u);
}

TEST(MetricsRegistry, DefaultMaskExcludesTimingRows) {
  MetricsRegistry reg;
  reg.add_source([](MetricsSink& sink) {
    sink.counter("stable.semantic", 1, MetricCategory::kSemantic);
    sink.counter("stable.kernel", 2, MetricCategory::kKernel);
    sink.gauge("volatile.seconds", 0.5, MetricCategory::kTiming);
  });
  const MetricsSnapshot stable = reg.snapshot();
  EXPECT_NE(stable.find("stable.semantic"), nullptr);
  EXPECT_NE(stable.find("stable.kernel"), nullptr);
  EXPECT_EQ(stable.find("volatile.seconds"), nullptr);

  const MetricsSnapshot all = reg.snapshot(kAllCategories);
  EXPECT_NE(all.find("volatile.seconds"), nullptr);

  const MetricsSnapshot semantic = reg.snapshot(kSemanticOnly);
  EXPECT_NE(semantic.find("stable.semantic"), nullptr);
  EXPECT_EQ(semantic.find("stable.kernel"), nullptr);
}

TEST(MetricsSnapshot, RowsSortByNameAndRenderFixedFormats) {
  MetricsRegistry reg;
  reg.add_source([](MetricsSink& sink) {
    sink.gauge("b.gauge", 1.5);
    sink.counter("a.count", 42);
  });
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.rows().size(), 2u);
  EXPECT_EQ(snap.rows()[0].name, "a.count");
  EXPECT_EQ(snap.rows()[1].name, "b.gauge");
  // Counters render as plain integers, gauges at %.6f — the fixed formats
  // the byte-identity contract rests on.
  EXPECT_EQ(snap.to_csv(),
            "name,category,value\n"
            "a.count,semantic,42\n"
            "b.gauge,semantic,1.500000\n");
  EXPECT_EQ(snap.to_json(),
            "{\"metrics\":[{\"name\":\"a.count\",\"category\":\"semantic\","
            "\"value\":42},{\"name\":\"b.gauge\",\"category\":\"semantic\","
            "\"value\":1.500000}]}\n");
}

TEST(MetricsSnapshot, AccessorsReturnZeroForMissingRows) {
  const MetricsSnapshot snap({});
  EXPECT_EQ(snap.find("nope"), nullptr);
  EXPECT_EQ(snap.count("nope"), 0u);
  EXPECT_EQ(snap.value("nope"), 0.0);
}

TEST(MetricsSnapshot, TableListsEveryRow) {
  MetricsRegistry reg;
  reg.add_source([](MetricsSink& sink) {
    sink.counter("sim.cycles", 100);
    sink.gauge("sim.settle_work", 321.0, MetricCategory::kKernel);
  });
  const std::string table = reg.snapshot().to_table();
  EXPECT_NE(table.find("sim.cycles"), std::string::npos);
  EXPECT_NE(table.find("sim.settle_work"), std::string::npos);
  EXPECT_NE(table.find("kernel"), std::string::npos);
}

}  // namespace
}  // namespace mte::obs
