// TraceSession unit tests: event accounting against the hard cap, the
// drop counter, and the Chrome trace_event JSON shape (the CI
// observability job re-validates the schema on a real mte_prof run).
#include <gtest/gtest.h>

#include <string>

#include "obs/trace_session.hpp"
#include "sim/trace.hpp"

namespace mte::obs {
namespace {

TEST(TraceSession, RecordsCycleSpansAndCounters) {
  TraceSession trace;
  trace.record_cycle(0, 10, 5, 0);
  trace.record_cycle(1, 8, 5, 2);  // elided > 0 adds the instant event
  EXPECT_EQ(trace.event_count(), 3u + 4u);
  EXPECT_EQ(trace.dropped_events(), 0u);

  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"settle\""), std::string::npos);
  EXPECT_NE(json.find("\"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"settle_work\""), std::string::npos);
  EXPECT_NE(json.find("\"tick_elision\""), std::string::npos);
  EXPECT_NE(json.find("\"us_per_cycle\":1000"), std::string::npos);
}

TEST(TraceSession, CapCountsDropsInsteadOfGrowing) {
  TraceSession::Options opt;
  opt.max_events = 7;  // room for two plain cycles (3 events each), not three
  TraceSession trace(opt);
  trace.record_cycle(0, 1, 1, 0);
  trace.record_cycle(1, 1, 1, 0);
  EXPECT_EQ(trace.event_count(), 6u);
  EXPECT_EQ(trace.dropped_events(), 0u);
  trace.record_cycle(2, 1, 1, 0);  // needs 3 slots, 1 left -> dropped whole
  EXPECT_EQ(trace.event_count(), 6u);
  EXPECT_EQ(trace.dropped_events(), 3u);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"dropped_events\":3"), std::string::npos);
}

TEST(TraceSession, TransfersOverlayFromRecorder) {
  sim::TraceRecorder rec;
  rec.record(3, "ch0", 0, 100);
  rec.record(4, "ch1", 1, 200);
  TraceSession trace;
  trace.add_transfers(rec);
  EXPECT_EQ(trace.event_count(), 2u);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"ch0\""), std::string::npos);
  EXPECT_NE(json.find("\"ch1\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\":200"), std::string::npos);
}

TEST(TraceSession, DemotionMarksFirstCycleOnly) {
  TraceSession trace;
  trace.record_demotion(17);
  trace.record_demotion(25);  // later demotion reports are ignored
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"demoted_to_naive\""), std::string::npos);
  const std::size_t first = json.find("demoted_to_naive");
  EXPECT_EQ(json.find("demoted_to_naive", first + 1), std::string::npos);
}

TEST(TraceSession, JsonIsDeterministicAcrossIdenticalSessions) {
  const auto build = [] {
    TraceSession t;
    t.record_cycle(0, 4, 2, 1);
    t.add_transfer(0, "out", 0, 9);
    return t.to_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(TraceSession, EmitMetricsPublishesOccupancy) {
  TraceSession::Options opt;
  opt.max_events = 3;
  TraceSession trace(opt);
  trace.record_cycle(0, 1, 1, 0);
  trace.record_cycle(1, 1, 1, 0);  // dropped: only 0 slots left
  MetricsRegistry reg;
  reg.add_source([&trace](MetricsSink& sink) { trace.emit_metrics(sink); });
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.count("trace.events"), 3u);
  EXPECT_EQ(snap.count("trace.dropped"), 3u);
}

}  // namespace
}  // namespace mte::obs
