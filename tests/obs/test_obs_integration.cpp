// Observability contracts against a live simulator: snapshot determinism
// across kernels and runs, zero observer effect, probe metrics under
// save/restore, profiler attachment and reset, trace attachment.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "netlist/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_session.hpp"

namespace mte::obs {
namespace {

netlist::Netlist fig1_pipeline() {
  netlist::CircuitBuilder b;
  b.source("src") >> b.buffer("b0") >> b.function("sq", "square") >>
      b.buffer("b1") >> b.sink("out");
  return b.build();
}

std::unique_ptr<netlist::Elaboration> elaborate(const netlist::Netlist& net,
                                                sim::KernelKind kernel) {
  netlist::ElaborationOptions opt;
  opt.channel_probes = true;
  opt.kernel = kernel;
  auto e = std::make_unique<netlist::Elaboration>(
      net, netlist::FunctionRegistry::with_defaults(),
      netlist::ComponentFactory::defaults(), opt);
  e->source("src").set_generator([](std::uint64_t i) { return i; });
  e->source("src").set_rate(0.8, 7);
  e->sink("out").set_rate(0.6, 11);
  e->simulator().reset();
  return e;
}

TEST(ObsIntegration, SemanticSnapshotIsByteIdenticalAcrossKernels) {
  // The kSemantic category is the cross-kernel contract: lockstep
  // circuits agree on cycles and probe statistics no matter which settle
  // kernel ran. Kernel-category rows (evals, ticks) legitimately differ.
  const netlist::Netlist net = fig1_pipeline();
  auto naive = elaborate(net, sim::KernelKind::kNaive);
  auto event = elaborate(net, sim::KernelKind::kEventDriven);
  naive->simulator().run(500);
  event->simulator().run(500);
  EXPECT_EQ(naive->simulator().metrics().snapshot(kSemanticOnly).to_csv(),
            event->simulator().metrics().snapshot(kSemanticOnly).to_csv());
}

TEST(ObsIntegration, StableSnapshotIsByteIdenticalAcrossRuns) {
  // The default mask (semantic + kernel) must render byte-identically for
  // two runs of the same circuit at the same seed — wall-clock rows are
  // excluded by construction.
  const netlist::Netlist net = fig1_pipeline();
  auto a = elaborate(net, sim::KernelKind::kEventDriven);
  auto b = elaborate(net, sim::KernelKind::kEventDriven);
  a->simulator().run(500);
  b->simulator().run(500);
  const std::string csv = a->simulator().metrics().snapshot().to_csv();
  EXPECT_EQ(csv, b->simulator().metrics().snapshot().to_csv());
  EXPECT_NE(csv.find("sim.settle_work"), std::string::npos);
  EXPECT_EQ(csv.find("sim.settle_seconds"), std::string::npos);  // timing row
}

TEST(ObsIntegration, RegistryHasNoObserverEffect) {
  // Pull model: a run that takes snapshots and a run with the registry
  // disabled must do bit-identical simulation work.
  const netlist::Netlist net = fig1_pipeline();
  auto observed = elaborate(net, sim::KernelKind::kEventDriven);
  auto dark = elaborate(net, sim::KernelKind::kEventDriven);
  dark->simulator().metrics().set_enabled(false);
  for (int burst = 0; burst < 5; ++burst) {
    observed->simulator().run(100);
    dark->simulator().run(100);
    (void)observed->simulator().metrics().snapshot();  // mid-run pulls
  }
  EXPECT_EQ(observed->simulator().settle_work(), dark->simulator().settle_work());
  EXPECT_EQ(observed->simulator().eval_count(), dark->simulator().eval_count());
  EXPECT_EQ(observed->simulator().tick_count(), dark->simulator().tick_count());
  EXPECT_TRUE(dark->simulator().metrics().snapshot().rows().empty());
}

TEST(ObsIntegration, ChannelMetricsMatchProbeAccessors) {
  const netlist::Netlist net = fig1_pipeline();
  auto e = elaborate(net, sim::KernelKind::kEventDriven);
  e->simulator().run(300);
  const MetricsSnapshot snap = e->simulator().metrics().snapshot();
  const auto names = e->channel_names();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    const auto& probe = e->probe(name);
    EXPECT_EQ(snap.count("channel." + name + ".transfers"), probe.count());
    EXPECT_EQ(snap.value("channel." + name + ".throughput"), probe.throughput());
    EXPECT_EQ(snap.value("channel." + name + ".mean_wait"), probe.mean_wait());
  }
}

TEST(ObsIntegration, SemanticMetricsSurviveSaveRestore) {
  // Probe statistics are registered component state: a restored run's
  // semantic snapshot must equal the original's at the same cycle.
  // Kernel-category counters deliberately do NOT survive (diagnostics
  // restart at zero, covering only the replayed region).
  const netlist::Netlist net = fig1_pipeline();
  auto cold = elaborate(net, sim::KernelKind::kEventDriven);
  cold->simulator().run(100);
  std::ostringstream saved;
  cold->simulator().save(saved);
  cold->simulator().run(200);
  const std::string cold_csv =
      cold->simulator().metrics().snapshot(kSemanticOnly).to_csv();

  auto warm = elaborate(net, sim::KernelKind::kEventDriven);
  std::istringstream is(saved.str());
  warm->simulator().restore(is);
  warm->simulator().run(200);
  EXPECT_EQ(warm->simulator().now(), cold->simulator().now());
  EXPECT_EQ(warm->simulator().metrics().snapshot(kSemanticOnly).to_csv(),
            cold_csv);
}

TEST(ObsIntegration, RestoreResetsAttachedProfiler) {
  const netlist::Netlist net = fig1_pipeline();
  auto e = elaborate(net, sim::KernelKind::kEventDriven);
  PhaseProfiler prof;
  e->simulator().set_profiler(&prof);
  e->simulator().run(50);
  std::ostringstream saved;
  e->simulator().save(saved);
  e->simulator().run(50);
  EXPECT_GT(prof.sample_count(), 0u);

  // Profiler state is scratch: restore() resets it so post-restore
  // reports cover only the replayed region.
  std::istringstream is(saved.str());
  e->simulator().restore(is);
  EXPECT_EQ(prof.sample_count(), 0u);
  e->simulator().set_profiler(nullptr);
}

TEST(ObsIntegration, ProfilerCountsAreExactAndRanked) {
  const netlist::Netlist net = fig1_pipeline();
  auto e = elaborate(net, sim::KernelKind::kEventDriven);
  PhaseProfiler prof;
  e->simulator().set_profiler(&prof);
  e->simulator().run(200);
  const ProfileReport report = prof.report(e->simulator().components());
  e->simulator().set_profiler(nullptr);

  ASSERT_FALSE(report.rows().empty());
  std::uint64_t instances = 0;
  std::uint64_t evals = 0;
  for (const auto& row : report.rows()) {
    instances += row.instances;
    evals += row.evals;
  }
  EXPECT_EQ(instances, e->simulator().component_count());
  // Call counts are exact (read off the components), not sampled.
  std::uint64_t expected_evals = 0;
  for (const auto* c : e->simulator().components()) {
    expected_evals += c->kernel_eval_calls();
  }
  EXPECT_EQ(evals, expected_evals);
  // Ranked most-expensive-first: sampled seconds desc, then exact evals,
  // then name — the deterministic order the report contract promises.
  for (std::size_t i = 1; i < report.rows().size(); ++i) {
    const auto& a = report.rows()[i - 1];
    const auto& b = report.rows()[i];
    const bool ordered =
        a.settle_seconds + a.commit_seconds > b.settle_seconds + b.commit_seconds ||
        (a.settle_seconds + a.commit_seconds == b.settle_seconds + b.commit_seconds &&
         (a.evals > b.evals || (a.evals == b.evals && a.type <= b.type)));
    EXPECT_TRUE(ordered) << a.type << " before " << b.type;
  }
  // The attached profiler also publishes through the simulator's registry.
  const MetricsSnapshot snap = e->simulator().metrics().snapshot();
  e->simulator().set_profiler(&prof);
  const MetricsSnapshot with_prof = e->simulator().metrics().snapshot();
  e->simulator().set_profiler(nullptr);
  const auto has_profile_rows = [](const MetricsSnapshot& s) {
    for (const auto& row : s.rows()) {
      if (row.name.rfind("profile.", 0) == 0) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_profile_rows(snap));
  EXPECT_TRUE(has_profile_rows(with_prof));
}

TEST(ObsIntegration, TraceSessionRecordsEveryCycleWhenAttached) {
  const netlist::Netlist net = fig1_pipeline();
  auto e = elaborate(net, sim::KernelKind::kEventDriven);
  TraceSession trace;
  e->simulator().set_trace(&trace);
  e->simulator().run(50);
  const MetricsSnapshot snap = e->simulator().metrics().snapshot();
  e->simulator().set_trace(nullptr);
  EXPECT_GE(trace.event_count(), 3u * 50u);  // >= 3 events per cycle
  EXPECT_EQ(trace.dropped_events(), 0u);
  EXPECT_EQ(snap.count("trace.events"), trace.event_count());
}

}  // namespace
}  // namespace mte::obs
