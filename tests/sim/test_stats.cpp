#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/latency.hpp"
#include "stats/throughput.hpp"

namespace mte::stats {
namespace {

TEST(Histogram, BasicMoments) {
  Histogram h;
  h.add(1);
  h.add(2);
  h.add(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.add(10, 5);
  h.add(20, 5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, Percentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 99u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(7);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  h.add(3);
  EXPECT_EQ(h.min(), 3u);
}

TEST(ThroughputMeter, RatesOverWindow) {
  ThroughputMeter m(2);
  m.start_window(100);
  for (int i = 0; i < 30; ++i) m.record(0);
  for (int i = 0; i < 10; ++i) m.record(1);
  m.end_window(200);
  EXPECT_EQ(m.count(0), 30u);
  EXPECT_EQ(m.total(), 40u);
  EXPECT_DOUBLE_EQ(m.rate(0), 0.3);
  EXPECT_DOUBLE_EQ(m.rate(1), 0.1);
  EXPECT_DOUBLE_EQ(m.total_rate(), 0.4);
}

TEST(ThroughputMeter, WindowRestartClearsCounts) {
  ThroughputMeter m(1);
  m.start_window(0);
  m.record(0);
  m.end_window(10);
  m.start_window(10);
  m.end_window(20);
  EXPECT_EQ(m.count(0), 0u);
  EXPECT_DOUBLE_EQ(m.rate(0), 0.0);
}

TEST(ThroughputMeter, EmptyWindowIsZeroRate) {
  ThroughputMeter m(1);
  m.record(0);
  EXPECT_DOUBLE_EQ(m.rate(0), 0.0);  // no window bounds set
}

TEST(LatencyTracker, TracksInjectToRetire) {
  LatencyTracker lt;
  lt.on_inject(1, 10);
  lt.on_inject(2, 12);
  EXPECT_EQ(lt.in_flight(), 2u);
  EXPECT_EQ(lt.on_retire(1, 15), 5u);
  EXPECT_EQ(lt.on_retire(2, 20), 8u);
  EXPECT_EQ(lt.in_flight(), 0u);
  EXPECT_DOUBLE_EQ(lt.histogram().mean(), 6.5);
}

TEST(LatencyTracker, UnknownTagIgnored) {
  LatencyTracker lt;
  EXPECT_EQ(lt.on_retire(99, 5), 0u);
  EXPECT_EQ(lt.histogram().count(), 0u);
}

TEST(LatencyTracker, ClearEmpties) {
  LatencyTracker lt;
  lt.on_inject(1, 0);
  lt.clear();
  EXPECT_EQ(lt.in_flight(), 0u);
  EXPECT_EQ(lt.on_retire(1, 10), 0u);
}

}  // namespace
}  // namespace mte::stats
