// Kernel-equivalence fuzzing: the seeded random-netlist generator
// (netlist/fuzz.hpp, shared with mte_lint's --fuzz-corpus mode and the
// lint-vs-simulation cross-check) feeds the lockstep harness across
// random structures (buffer chains, function units, variable-latency
// units, fork/join diamonds), random thread counts S, MEB variants and
// workload rates. Every failure message carries the reproducing seed;
// set MTE_FUZZ_SEED to replay a specific base seed (CI pins one for
// determinism).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "kernel_lockstep.hpp"
#include "netlist/fuzz.hpp"

namespace {

using namespace mte;
using kerneltest::run_lockstep;

/// Returns true when the lockstep run compared to completion (false =
/// skipped as divergent, which the generator's exclusions make rare).
bool run_fuzz_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  bool has_mt_join = false;
  const netlist::Netlist net = netlist::random_fuzz_netlist(rng, has_mt_join);

  // Workload parameters drawn once, applied identically to both kernels.
  struct Rates {
    std::vector<double> src, sink;
    std::uint64_t seed_base;
  } rates;
  rates.seed_base = rng();
  std::uniform_real_distribution<double> rate_dist(0.5, 1.0);
  for (int i = 0; i < 4; ++i) rates.src.push_back(rate_dist(rng));
  for (int i = 0; i < 8; ++i) rates.sink.push_back(rate_dist(rng));

  const auto configure = [&net, &rates](netlist::Elaboration& e) {
    // Mixed-migration coverage: demote a random third of the components
    // to legacy single-process evaluation (process_count() == 1), so the
    // kernels are exercised on netlists where split two-phase components
    // and unsplit ones coexist — the partial-migration shape, not just
    // the all-migrated benches. The choice stream is seeded identically
    // for both elaborations (component order is deterministic), so the
    // reference and the DUT demote the same components.
    std::mt19937_64 split_rng(rates.seed_base ^ 0x51713ULL);
    for (sim::Component* c : e.simulator().components()) {
      if (split_rng() % 3 == 0) c->set_process_split(false);
    }
    std::size_t si = 0;
    std::size_t ki = 0;
    for (const auto& node : net.nodes()) {
      if (node.type == netlist::NodeType::kSource) {
        const double rate = rates.src[si++ % rates.src.size()];
        if (e.is_multithreaded()) {
          auto& src = e.mt_source(node.name);
          for (std::size_t t = 0; t < e.threads(); ++t) {
            src.set_generator(t, [t](std::uint64_t i) { return (t << 24) + i; });
            src.set_rate(t, rate, rates.seed_base + 31 * t);
          }
        } else {
          auto& src = e.source(node.name);
          src.set_generator([](std::uint64_t i) { return i; });
          src.set_rate(rate, rates.seed_base + 5);
        }
      } else if (node.type == netlist::NodeType::kSink) {
        const double rate = rates.sink[ki++ % rates.sink.size()];
        if (e.is_multithreaded()) {
          auto& sink = e.mt_sink(node.name);
          for (std::size_t t = 0; t < e.threads(); ++t) {
            sink.set_rate(t, rate, rates.seed_base + 17 * t + 7);
          }
        } else {
          e.sink(node.name).set_rate(rate, rates.seed_base + 11);
        }
      }
    }
  };

  // MTE_FUZZ_MONITORS=1 additionally attaches protocol monitors to both
  // elaborations: a violation on a lint-clean fuzz netlist is a hard
  // failure (the robustness CI job runs the corpus this way).
  const char* mon = std::getenv("MTE_FUZZ_MONITORS");
  // snapshot_interval bounds any divergence replay to a 200-cycle window:
  // a fuzz failure prints the offending (begin, end] window and, when
  // MTE_BISECT_DIR is set (CI), drops the snapshot pair as artifacts.
  return run_lockstep(net, configure,
                      {.cycles = 400,
                       .allow_divergent = true,
                       .arbiter = has_mt_join ? mt::ArbiterKind::kOblivious
                                              : mt::ArbiterKind::kRoundRobin,
                       .snapshot_interval = 200,
                       .monitors = mon != nullptr && std::string(mon) == "1"});
}

std::uint64_t fuzz_base_seed() {
  if (const char* env = std::getenv("MTE_FUZZ_SEED"); env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC0FFEEu;  // fixed default: the suite is deterministic by default
}

TEST(KernelFuzz, RandomNetlistsLockstep) {
  const std::uint64_t base = fuzz_base_seed();
  const int cases = 64;
  int completed = 0;
  for (int k = 0; k < cases; ++k) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(k);
    SCOPED_TRACE("reproduce with MTE_FUZZ_SEED=" + std::to_string(seed) +
                 " (case " + std::to_string(k) + " of base " +
                 std::to_string(base) + ")");
    bool ok = false;
    try {
      ok = run_fuzz_case(seed);
    } catch (const std::exception& ex) {
      ADD_FAILURE() << "exception: " << ex.what() << " — reproduce with"
                    << " MTE_FUZZ_SEED=" << seed;
    }
    if (ok) ++completed;
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "kernel fuzz failed at seed %llu\n",
                   static_cast<unsigned long long>(seed));
      return;
    }
  }
  std::fprintf(stderr, "kernel fuzz: %d/%d netlists fully compared (base seed %llu)\n",
               completed, cases, static_cast<unsigned long long>(base));
  // The acceptance bar: at least 50 fuzzed netlists fully compared.
  EXPECT_GE(completed, 50) << "too many cases skipped as divergent";
}

}  // namespace
