// Kernel-equivalence fuzzing: a seeded random-netlist generator (driving
// the CircuitBuilder) feeds the lockstep harness across random structures
// (buffer chains, function units, variable-latency units, fork/join
// diamonds), random thread counts S, MEB variants and workload rates.
// Every failure message carries the reproducing seed; set MTE_FUZZ_SEED to
// replay a specific base seed (CI pins one for determinism).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "kernel_lockstep.hpp"

namespace {

using namespace mte;
using kerneltest::run_lockstep;

/// Random loop-free netlist: a frontier of open outputs is grown with
/// random operators and finally drained into sinks.
///
/// Structural exclusions, chosen so every generated circuit stays inside
/// the kernels' equivalence contract (well-formed, convergent):
///  - no merges: a merge requires mutually exclusive inputs, which random
///    structure and backpressure cannot guarantee;
///  - in multithreaded netlists a join only combines arms with disjoint
///    fork ancestry: fork/join *reconvergence* closes a genuine
///    combinational valid/ready cycle (M-Join cross-input ready coupling
///    meets speculative MEB arbitration) that oscillates, and
///    CircuitBuilder::build() rejects it with a ReconvergenceHazard
///    diagnostic. Joins over independent arms stay in the pool for both
///    elaboration modes (single-thread joins carry no such coupling at
///    all — buffer/source/VL valid is state-driven), with one proviso:
///    multithreaded netlists containing joins run under the
///    ready-oblivious arbiter (reported via has_mt_join). Ready-aware
///    arbitration feeding an M-Join has multiple combinational fixed
///    points — legal circuits whose settled state is evaluation-order
///    dependent, which no lockstep comparison can pin down.
netlist::Netlist random_netlist(std::mt19937_64& rng, bool& has_mt_join) {
  has_mt_join = false;
  netlist::CircuitBuilder b;
  auto pick = [&rng](std::size_t n) {
    return static_cast<std::size_t>(rng() % n);
  };

  // Half the netlists go through the paper's multithreading transform;
  // decided up front because it constrains the structure (joins must not
  // reconverge forked arms).
  const bool multithreaded = (rng() % 2) == 0;
  const std::size_t s_choices[] = {1, 2, 4, 8};
  const std::size_t threads = s_choices[pick(4)];
  const auto kind = (rng() % 2) == 0 ? mt::MebKind::kFull : mt::MebKind::kReduced;

  struct Arm {
    netlist::NodeRef node;
    std::set<std::size_t> forks;  // fork node ids on this arm's path
  };
  std::vector<Arm> frontier;
  const std::size_t sources = 1 + pick(2);
  for (std::size_t i = 0; i < sources; ++i) {
    frontier.push_back({b.source("src" + std::to_string(i)), {}});
  }

  int id = 0;
  const int ops = 4 + static_cast<int>(pick(12));
  for (int k = 0; k < ops; ++k) {
    const std::string suffix = std::to_string(id++);
    const std::size_t at = pick(frontier.size());
    const netlist::NodeRef from = frontier[at].node;
    switch (pick(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // buffer (the most common structural element)
        frontier[at].node = from >> b.buffer("buf" + suffix);
        break;
      }
      case 4:
      case 5: {  // function unit
        const char* fn = (rng() % 2) == 0 ? "inc" : "double";
        frontier[at].node = from >> b.function("fn" + suffix, fn);
        break;
      }
      case 6: {  // variable-latency unit
        const unsigned lo = 1 + static_cast<unsigned>(pick(2));
        const unsigned hi = lo + static_cast<unsigned>(pick(3));
        frontier[at].node = from >> b.var_latency("vl" + suffix, lo, hi);
        break;
      }
      case 7:
      case 8: {  // fork into two open arms
        auto f = b.fork("fork" + suffix, 2);
        from >> f;
        frontier[at].node = f;          // arm 0 stays open on the fork node
        frontier[at].forks.insert(f.id());
        frontier.push_back(frontier[at]);  // arm 1 shares the ancestry
        break;
      }
      default: {  // join two frontier outputs
        // Candidate partners: any other arm single-thread; only arms with
        // disjoint fork ancestry multithreaded (reconvergence is rejected
        // by build()).
        std::vector<std::size_t> partners;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          if (i == at) continue;
          if (multithreaded) {
            bool disjoint = true;
            for (const std::size_t f : frontier[i].forks) {
              if (frontier[at].forks.count(f) != 0) {
                disjoint = false;
                break;
              }
            }
            if (!disjoint) continue;
          }
          partners.push_back(i);
        }
        if (partners.empty()) {
          frontier[at].node = from >> b.buffer("buf" + suffix);
          break;
        }
        const std::size_t other = partners[pick(partners.size())];
        if (multithreaded) has_mt_join = true;
        auto j = b.join("join" + suffix, 2);
        frontier[at].node >> j;
        frontier[other].node >> j;
        frontier[at].node = j;
        frontier[at].forks.insert(frontier[other].forks.begin(),
                                  frontier[other].forks.end());
        frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(other));
        break;
      }
    }
  }
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    frontier[i].node >> b.sink("sink" + std::to_string(i));
  }

  if (multithreaded) b.then_multithreaded(threads, kind);
  return b.build();
}

/// Returns true when the lockstep run compared to completion (false =
/// skipped as divergent, which the generator's exclusions make rare).
bool run_fuzz_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  bool has_mt_join = false;
  const netlist::Netlist net = random_netlist(rng, has_mt_join);

  // Workload parameters drawn once, applied identically to both kernels.
  struct Rates {
    std::vector<double> src, sink;
    std::uint64_t seed_base;
  } rates;
  rates.seed_base = rng();
  std::uniform_real_distribution<double> rate_dist(0.5, 1.0);
  for (int i = 0; i < 4; ++i) rates.src.push_back(rate_dist(rng));
  for (int i = 0; i < 8; ++i) rates.sink.push_back(rate_dist(rng));

  const auto configure = [&net, &rates](netlist::Elaboration& e) {
    // Mixed-migration coverage: demote a random third of the components
    // to legacy single-process evaluation (process_count() == 1), so the
    // kernels are exercised on netlists where split two-phase components
    // and unsplit ones coexist — the partial-migration shape, not just
    // the all-migrated benches. The choice stream is seeded identically
    // for both elaborations (component order is deterministic), so the
    // reference and the DUT demote the same components.
    std::mt19937_64 split_rng(rates.seed_base ^ 0x51713ULL);
    for (sim::Component* c : e.simulator().components()) {
      if (split_rng() % 3 == 0) c->set_process_split(false);
    }
    std::size_t si = 0;
    std::size_t ki = 0;
    for (const auto& node : net.nodes()) {
      if (node.type == netlist::NodeType::kSource) {
        const double rate = rates.src[si++ % rates.src.size()];
        if (e.is_multithreaded()) {
          auto& src = e.mt_source(node.name);
          for (std::size_t t = 0; t < e.threads(); ++t) {
            src.set_generator(t, [t](std::uint64_t i) { return (t << 24) + i; });
            src.set_rate(t, rate, rates.seed_base + 31 * t);
          }
        } else {
          auto& src = e.source(node.name);
          src.set_generator([](std::uint64_t i) { return i; });
          src.set_rate(rate, rates.seed_base + 5);
        }
      } else if (node.type == netlist::NodeType::kSink) {
        const double rate = rates.sink[ki++ % rates.sink.size()];
        if (e.is_multithreaded()) {
          auto& sink = e.mt_sink(node.name);
          for (std::size_t t = 0; t < e.threads(); ++t) {
            sink.set_rate(t, rate, rates.seed_base + 17 * t + 7);
          }
        } else {
          e.sink(node.name).set_rate(rate, rates.seed_base + 11);
        }
      }
    }
  };

  return run_lockstep(net, configure,
                      {.cycles = 400,
                       .allow_divergent = true,
                       .arbiter = has_mt_join ? mt::ArbiterKind::kOblivious
                                              : mt::ArbiterKind::kRoundRobin});
}

std::uint64_t fuzz_base_seed() {
  if (const char* env = std::getenv("MTE_FUZZ_SEED"); env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC0FFEEu;  // fixed default: the suite is deterministic by default
}

TEST(KernelFuzz, RandomNetlistsLockstep) {
  const std::uint64_t base = fuzz_base_seed();
  const int cases = 64;
  int completed = 0;
  for (int k = 0; k < cases; ++k) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(k);
    SCOPED_TRACE("reproduce with MTE_FUZZ_SEED=" + std::to_string(seed) +
                 " (case " + std::to_string(k) + " of base " +
                 std::to_string(base) + ")");
    bool ok = false;
    try {
      ok = run_fuzz_case(seed);
    } catch (const std::exception& ex) {
      ADD_FAILURE() << "exception: " << ex.what() << " — reproduce with"
                    << " MTE_FUZZ_SEED=" << seed;
    }
    if (ok) ++completed;
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "kernel fuzz failed at seed %llu\n",
                   static_cast<unsigned long long>(seed));
      return;
    }
  }
  std::fprintf(stderr, "kernel fuzz: %d/%d netlists fully compared (base seed %llu)\n",
               completed, cases, static_cast<unsigned long long>(base));
  // The acceptance bar: at least 50 fuzzed netlists fully compared.
  EXPECT_GE(completed, 50) << "too many cases skipped as divergent";
}

}  // namespace
