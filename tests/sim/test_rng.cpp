#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"

namespace mte::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroReturnsZero) {
  Rng r(3);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values of a small range are hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyApproximatesP) {
  Rng r(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  const double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.3, 0.01);
}

TEST(Rng, UniformityAcrossBuckets) {
  Rng r(13);
  int buckets[10] = {};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++buckets[r.next_below(10)];
  for (int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b) / trials, 0.1, 0.01);
  }
}

TEST(SplitMix64, KnownFirstValueStability) {
  // Pin the expansion function so persisted seeds stay meaningful.
  SplitMix64 sm(0);
  const auto v0 = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), v0);
  EXPECT_NE(sm.next(), v0);
}

}  // namespace
}  // namespace mte::sim
