// Runtime robustness: the ProtocolMonitor / FaultInjector / watchdog
// triangle.
//
//   * fault matrix — every FaultKind, injected on single-threaded and
//     multithreaded elaborations under BOTH settle kernels, must be caught
//     by the monitor with the expected MTE1xx code;
//   * healthy traffic — monitors stay silent on contract-honouring
//     circuits, and attaching them adds zero settle evaluations and zero
//     ticks (they read settled wires outside the eval phase only);
//   * watchdog — a stall that resumes before the deadline must NOT fire;
//     a genuine deadlock fires with a wait-for-graph diagnosis naming the
//     cyclic dependency, and the post-mortem bundle round-trips through
//     Simulator::restore to reproduce the stall.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "netlist/elaborate.hpp"
#include "netlist/netlist.hpp"
#include "sim/fault_injector.hpp"
#include "sim/protocol_monitor.hpp"

namespace {

using namespace mte;
using netlist::Elaboration;
using netlist::ElaborationOptions;
using netlist::Netlist;

/// src -> b (elastic buffer) -> snk. Channels "src:0" and "b:0"; "src:0"
/// feeds a buffer, so it is persistent-ready (MTE103 applies), and "b:0"
/// is driven by one, so it is persistent-valid (MTE101 applies).
Netlist chain_netlist() {
  Netlist n;
  const auto src = n.add_source("src");
  const auto b = n.add_buffer("b");
  const auto snk = n.add_sink("snk");
  n.connect(src, 0, b, 0);
  n.connect(b, 0, snk, 0);
  return n;
}

/// The MTE030 fixture: fork feedback into a join with no initial token.
Netlist join_cycle_netlist() {
  Netlist n;
  const auto src = n.add_source("src");
  const auto j = n.add_join("j", 2);
  const auto b0 = n.add_buffer("b0");
  const auto f = n.add_fork("f", 2);
  const auto snk = n.add_sink("snk");
  const auto b1 = n.add_buffer("b1");
  n.connect(src, 0, j, 0);
  n.connect(j, 0, b0, 0);
  n.connect(b0, 0, f, 0);
  n.connect(f, 0, snk, 0);
  n.connect(f, 1, b1, 0);
  n.connect(b1, 0, j, 1);
  return n;
}

/// Monitor + injector + elaboration with the destruction order the
/// attachment pointers need (the simulator dies first).
struct Rig {
  netlist::FunctionRegistry registry = netlist::FunctionRegistry::with_defaults();
  netlist::ComponentFactory factory = netlist::ComponentFactory::defaults();
  sim::ProtocolMonitor monitor;
  sim::FaultInjector injector{1};
  std::unique_ptr<Elaboration> elab;

  Rig(const Netlist& net, sim::KernelKind kernel, bool attach = true) {
    ElaborationOptions opt;
    opt.kernel = kernel;
    elab = std::make_unique<Elaboration>(net, registry, factory, opt);
    if (attach) {
      elab->attach_monitor(monitor);
      elab->bind_faults(injector);
    }
  }
  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  [[nodiscard]] sim::Simulator& sim() { return elab->simulator(); }
};

/// Pins the ST/MT rates each fault case needs to set up its precondition
/// (a stalled pending transfer, an empty persistent-ready buffer, ...).
struct FaultCase {
  const char* name;
  bool mt;
  sim::FaultInjector::Fault fault;
  double src0;  ///< source rate (ST) / thread-0 source rate (MT)
  double src1;  ///< thread-1 source rate (MT only)
  double snk;   ///< sink rate, every thread
  const char* expected;  ///< monitor code the fault must trip
};

// The adversarial contract: every fault class is caught, with the code
// that names what actually went wrong on the wires. Valid-persistence
// faults target "b:0" — the buffer output is the persistent-valid
// channel; rate-gated source valids may legally retract, so MTE101 does
// not apply at "src:0".
const FaultCase kFaultMatrix[] = {
    // Forced valid on the empty buffer output holds a pending transfer
    // (the sink never readies), then vanishes when the window ends.
    {"st_stuck_valid", false,
     {sim::FaultKind::kStuckValid, "b:0", 0, 5, 15}, 0.0, 0.0, 0.0, "MTE101"},
    // The full buffer's stalled output valid is yanked mid-handshake.
    {"st_drop_valid", false,
     {sim::FaultKind::kDropValid, "b:0", 0, 50, 60}, 1.0, 0.0, 0.0, "MTE101"},
    // The empty buffer's persistent in-ready is forced low with no accept.
    {"st_drop_ready", false,
     {sim::FaultKind::kDropReady, "src:0", 0, 10, 20}, 0.0, 0.0, 0.0, "MTE103"},
    // The stalled data word is XORed with a seeded mask (the rate-1 source
    // holds the same pending token, so the word must not move).
    {"st_corrupt", false,
     {sim::FaultKind::kCorruptData, "src:0", 0, 50, 51}, 1.0, 0.0, 0.0, "MTE102"},
    // A phantom token out of the EMPTY buffer: the sink is ready, the
    // replayed output valid fires a transfer the occupancy never backed
    // (MTE105 token conservation, one hook later).
    {"st_duplicate", false,
     {sim::FaultKind::kDuplicate, "b:0", 0, 5, 15}, 0.0, 0.0, 1.0, "MTE105"},
    // Same phantom-token shape on the multithreaded buffer.
    {"mt_stuck_valid", true,
     {sim::FaultKind::kStuckValid, "b:0", 1, 10, 12}, 0.0, 0.0, 1.0, "MTE105"},
    // The inverse: the MEB pops on its internal grant while the blinded
    // sink never accepts — the token vanishes in flight (occupancy drops
    // with no observed output transfer).
    {"mt_drop_valid", true,
     {sim::FaultKind::kDropValid, "b:0", 0, 50, 60}, 1.0, 0.0, 1.0, "MTE105"},
    // Per-thread in-ready of the full MEB (private slots) forced low.
    {"mt_drop_ready", true,
     {sim::FaultKind::kDropReady, "src:0", 0, 10, 20}, 0.0, 0.0, 0.0, "MTE103"},
    {"mt_corrupt", true,
     {sim::FaultKind::kCorruptData, "src:0", 0, 50, 51}, 1.0, 0.0, 0.0, "MTE102"},
    // A second thread's valid forced while thread 0 holds a stalled
    // transfer: the single-active-thread invariant (the MEB's own
    // active_thread() check then throws ProtocolError at the edge — the
    // monitor must have recorded MTE104 before that).
    {"mt_duplicate", true,
     {sim::FaultKind::kDuplicate, "src:0", 1, 50, 51}, 1.0, 0.0, 0.0, "MTE104"},
};

void configure_rates(Rig& rig, const FaultCase& fc) {
  if (fc.mt) {
    auto& src = rig.elab->mt_source("src");
    src.set_generator(0, [](std::uint64_t i) { return i + 1; });
    src.set_generator(1, [](std::uint64_t i) { return 0x1000 + i; });
    src.set_rate(0, fc.src0, 11);
    src.set_rate(1, fc.src1, 12);
    auto& snk = rig.elab->mt_sink("snk");
    snk.set_rate(0, fc.snk, 21);
    snk.set_rate(1, fc.snk, 22);
  } else {
    auto& src = rig.elab->source("src");
    src.set_generator([](std::uint64_t i) { return i + 1; });
    src.set_rate(fc.src0, 11);
    rig.elab->sink("snk").set_rate(fc.snk, 21);
  }
}

void run_fault_case(const FaultCase& fc, sim::KernelKind kernel) {
  const Netlist base = chain_netlist();
  const Netlist net =
      fc.mt ? base.to_multithreaded(2, mt::MebKind::kFull) : base;
  Rig rig(net, kernel);
  configure_rates(rig, fc);
  rig.injector.add(fc.fault);
  sim::Simulator& s = rig.sim();
  s.reset();
  for (sim::Cycle c = 0; c < fc.fault.to + 30; ++c) {
    try {
      s.step();
    } catch (const sim::ProtocolError&) {
      // The commit phase's own invariant check (multi-valid) — legal to
      // surface after the monitor has recorded the violation.
      break;
    }
  }
  ASSERT_FALSE(rig.monitor.violations().empty())
      << fc.name << ": injected fault escaped the monitor ("
      << rig.injector.injected_count() << " wire writes)";
  const sim::ProtocolViolation& v = rig.monitor.violations().front();
  EXPECT_EQ(v.code, fc.expected) << v.format();
  EXPECT_EQ(v.channel, fc.fault.channel) << v.format();
  EXPECT_GT(rig.injector.injected_count(), 0u);
}

TEST(FaultMatrix, EveryFaultClassIsDetectedOnBothKernels) {
  for (const FaultCase& fc : kFaultMatrix) {
    for (const auto kernel :
         {sim::KernelKind::kNaive, sim::KernelKind::kEventDriven}) {
      SCOPED_TRACE(std::string(fc.name) + " / " +
                   std::string(sim::to_string(kernel)));
      run_fault_case(fc, kernel);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ProtocolMonitor, SilentOnHealthyTraffic) {
  for (const bool mt : {false, true}) {
    for (const auto kernel :
         {sim::KernelKind::kNaive, sim::KernelKind::kEventDriven}) {
      SCOPED_TRACE(std::string(mt ? "mt" : "st") + " / " +
                   std::string(sim::to_string(kernel)));
      const Netlist base = chain_netlist();
      const Netlist net =
          mt ? base.to_multithreaded(2, mt::MebKind::kFull) : base;
      Rig rig(net, kernel);
      if (mt) {
        auto& src = rig.elab->mt_source("src");
        auto& snk = rig.elab->mt_sink("snk");
        for (std::size_t t = 0; t < 2; ++t) {
          src.set_generator(t, [t](std::uint64_t i) { return (t << 24) + i; });
          src.set_rate(t, 0.7, 31 + t);
          snk.set_rate(t, 0.9, 41 + t);
        }
      } else {
        auto& src = rig.elab->source("src");
        src.set_generator([](std::uint64_t i) { return i; });
        src.set_rate(0.7, 31);
        rig.elab->sink("snk").set_rate(0.9, 41);
      }
      rig.sim().reset();
      rig.sim().run(300);
      EXPECT_TRUE(rig.monitor.violations().empty()) << rig.monitor.report();
      EXPECT_GT(rig.monitor.transfer_count(), 0u);
      EXPECT_EQ(rig.monitor.watched_channels(), 2u);
    }
  }
}

struct RunCounters {
  std::uint64_t evals = 0;
  std::uint64_t ticks = 0;
  std::uint64_t elided = 0;
  std::uint64_t transfers = 0;
};

RunCounters counted_run(sim::KernelKind kernel, bool monitored) {
  const Netlist net = chain_netlist();
  Rig rig(net, kernel, /*attach=*/monitored);
  auto& src = rig.elab->source("src");
  src.set_generator([](std::uint64_t i) { return i; });
  src.set_rate(0.7, 31);
  rig.elab->sink("snk").set_rate(0.9, 41);
  rig.sim().reset();
  rig.sim().run(300);
  RunCounters rc;
  rc.evals = rig.sim().eval_count();
  rc.ticks = rig.sim().tick_count();
  rc.elided = rig.sim().elided_tick_count();
  rc.transfers = rig.elab->probe("src:0").count();
  return rc;
}

TEST(ProtocolMonitor, AttachedMonitorAddsZeroEvalsAndTicks) {
  // The monitor only reads settled wires outside the eval phase, so the
  // kernels' work counters — and the simulated behaviour — must be
  // bit-identical with and without it.
  for (const auto kernel :
       {sim::KernelKind::kNaive, sim::KernelKind::kEventDriven}) {
    SCOPED_TRACE(sim::to_string(kernel));
    const RunCounters bare = counted_run(kernel, false);
    const RunCounters monitored = counted_run(kernel, true);
    EXPECT_EQ(bare.evals, monitored.evals);
    EXPECT_EQ(bare.ticks, monitored.ticks);
    EXPECT_EQ(bare.elided, monitored.elided);
    EXPECT_EQ(bare.transfers, monitored.transfers);
  }
}

TEST(Watchdog, StallThatResumesDoesNotFire) {
  // The sink sleeps for its first 100 cycles: the buffer fills in ~2
  // transfers, then the pipeline is idle for ~98 cycles — under a
  // 150-cycle deadline the watchdog must stay quiet and see the wake.
  const Netlist net = chain_netlist();
  Rig rig(net, sim::KernelKind::kEventDriven);
  auto& src = rig.elab->source("src");
  src.set_generator([](std::uint64_t i) { return i; });
  src.set_rate(1.0, 11);
  auto& snk = rig.elab->sink("snk");
  snk.set_rate(1.0, 21);
  snk.add_stall_window(0, 100);
  rig.sim().set_watchdog(150);
  rig.sim().reset();
  ASSERT_NO_THROW(rig.sim().run(400));
  EXPECT_GT(rig.monitor.transfer_count(), 100u) << "pipeline never woke up";
}

TEST(Watchdog, FiresOnSustainedStall) {
  // Same circuit, deadline shorter than the sleep: the watchdog must trip
  // during the stall with a diagnosis naming the waiting edge.
  const Netlist net = chain_netlist();
  Rig rig(net, sim::KernelKind::kEventDriven);
  auto& src = rig.elab->source("src");
  src.set_generator([](std::uint64_t i) { return i; });
  src.set_rate(1.0, 11);
  auto& snk = rig.elab->sink("snk");
  snk.set_rate(1.0, 21);
  snk.add_stall_window(0, 100);
  rig.sim().set_watchdog(50);
  rig.sim().reset();
  try {
    rig.sim().run(400);
    FAIL() << "watchdog never fired";
  } catch (const sim::WatchdogError& ex) {
    EXPECT_NE(std::string(ex.what()).find("MTE110"), std::string::npos)
        << ex.what();
    EXPECT_NE(ex.diagnosis().find("waits for"), std::string::npos)
        << ex.diagnosis();
  }
  EXPECT_LT(rig.sim().now(), 100u) << "fired after the stall ended";
}

TEST(Watchdog, ArmedWithoutMonitorRefusesToRun) {
  const Netlist net = chain_netlist();
  Rig rig(net, sim::KernelKind::kEventDriven, /*attach=*/false);
  rig.sim().set_watchdog(10);
  rig.sim().reset();
  EXPECT_THROW(rig.sim().step(), sim::SimulationError);
}

TEST(Watchdog, DeadlockBundleNamesCycleAndRoundTrips) {
  const Netlist net = join_cycle_netlist();
  const std::string dir = ::testing::TempDir() + "mte_postmortem_roundtrip";
  std::filesystem::remove_all(dir);

  Rig rig(net, sim::KernelKind::kEventDriven);
  rig.elab->source("src").set_generator([](std::uint64_t i) { return i; });
  rig.sim().set_watchdog(40, dir);
  rig.sim().reset();
  std::string diagnosis;
  try {
    rig.sim().run(200);
    FAIL() << "structural deadlock did not trip the watchdog";
  } catch (const sim::WatchdogError& ex) {
    diagnosis = ex.diagnosis();
  }
  // The wait-for graph must name the cyclic dependency through the join.
  EXPECT_NE(diagnosis.find("wait-for cycle"), std::string::npos) << diagnosis;
  EXPECT_NE(diagnosis.find("'j'"), std::string::npos) << diagnosis;

  const std::string prefix =
      dir + "/postmortem_c" + std::to_string(rig.sim().now());
  ASSERT_TRUE(std::filesystem::exists(prefix + ".snap")) << prefix;
  EXPECT_TRUE(std::filesystem::exists(prefix + ".trace.json"));
  EXPECT_TRUE(std::filesystem::exists(prefix + ".diagnosis.txt"));

  // Round trip: restoring the bundle's snapshot into a FRESH elaboration
  // (on the other kernel — snapshots are kernel-portable) reproduces the
  // stall, and the watchdog fires again with the same cyclic diagnosis.
  Rig fresh(net, sim::KernelKind::kNaive);
  fresh.elab->source("src").set_generator([](std::uint64_t i) { return i; });
  std::ifstream snap(prefix + ".snap", std::ios::binary);
  ASSERT_TRUE(snap.is_open());
  fresh.sim().restore(snap);
  fresh.sim().set_watchdog(40);
  try {
    fresh.sim().run(100);
    FAIL() << "restored stall did not reproduce";
  } catch (const sim::WatchdogError& ex) {
    EXPECT_NE(ex.diagnosis().find("'j'"), std::string::npos) << ex.diagnosis();
  }
}

}  // namespace
