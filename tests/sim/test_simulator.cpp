#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace mte::sim {
namespace {

/// A register: out <= in at each clock edge.
class Reg : public Component {
 public:
  Reg(Simulator& s, std::string name, Wire<int>& in, Wire<int>& out)
      : Component(s, std::move(name)), in_(in), out_(out) {}
  void reset() override { state_ = 0; }
  void eval() override { out_.set(state_); }
  void tick() override { state_ = in_.get(); }

 private:
  Wire<int>& in_;
  Wire<int>& out_;
  int state_ = 0;
};

/// Combinational +1.
class Inc : public Component {
 public:
  Inc(Simulator& s, std::string name, Wire<int>& in, Wire<int>& out)
      : Component(s, std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.set(in_.get() + 1); }
  void tick() override {}

 private:
  Wire<int>& in_;
  Wire<int>& out_;
};

TEST(Wire, SetNotesChangeOnlyOnNewValue) {
  ChangeTracker t;
  Wire<int> w(t, 0);
  EXPECT_FALSE(t.consume());
  w.set(5);
  EXPECT_TRUE(t.consume());
  w.set(5);
  EXPECT_FALSE(t.consume());
  EXPECT_EQ(w.get(), 5);
}

TEST(Simulator, CounterCircuitCountsCycles) {
  // reg -> inc -> reg closes a counter loop through a register.
  Simulator s;
  Wire<int> q(s.tracker(), 0);
  Wire<int> d(s.tracker(), 0);
  Reg reg(s, "reg", d, q);
  Inc inc(s, "inc", q, d);
  s.reset();
  s.run(10);
  s.settle();
  EXPECT_EQ(q.get(), 10);
}

TEST(Simulator, EvaluationOrderDoesNotMatter) {
  // Same circuit with components registered in the opposite order.
  Simulator s;
  Wire<int> q(s.tracker(), 0);
  Wire<int> d(s.tracker(), 0);
  Inc inc(s, "inc", q, d);
  Reg reg(s, "reg", d, q);
  s.reset();
  s.run(10);
  s.settle();
  EXPECT_EQ(q.get(), 10);
}

/// Oscillator: out = !out (no register in the loop).
class Not : public Component {
 public:
  Not(Simulator& s, Wire<bool>& in, Wire<bool>& out)
      : Component(s, "not"), in_(in), out_(out) {}
  void eval() override { out_.set(!in_.get()); }
  void tick() override {}

 private:
  Wire<bool>& in_;
  Wire<bool>& out_;
};

TEST(Simulator, CombinationalLoopDetected) {
  Simulator s;
  Wire<bool> a(s.tracker(), false);
  Not n(s, a, a);  // a = !a
  EXPECT_THROW(s.step(), CombinationalLoopError);
}

TEST(Simulator, SettleLimitOverride) {
  Simulator s;
  Wire<bool> a(s.tracker(), false);
  Not n(s, a, a);
  s.set_settle_limit(3);
  EXPECT_THROW(s.settle(), CombinationalLoopError);
}

TEST(Simulator, ResetRestartsCycleCountAndState) {
  Simulator s;
  Wire<int> q(s.tracker(), 0);
  Wire<int> d(s.tracker(), 0);
  Reg reg(s, "reg", d, q);
  Inc inc(s, "inc", q, d);
  s.reset();
  s.run(5);
  EXPECT_EQ(s.now(), 5u);
  s.reset();
  EXPECT_EQ(s.now(), 0u);
  s.run(3);
  s.settle();
  EXPECT_EQ(q.get(), 3);
}

TEST(Simulator, ObserversSeeSettledPreEdgeState) {
  Simulator s;
  Wire<int> q(s.tracker(), 0);
  Wire<int> d(s.tracker(), 0);
  Reg reg(s, "reg", d, q);
  Inc inc(s, "inc", q, d);
  std::vector<int> seen;
  s.on_cycle([&](Cycle) { seen.push_back(q.get()); });
  s.reset();
  s.run(4);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, MakeOwnsObjects) {
  Simulator s;
  auto& q = s.make<Wire<int>>(s.tracker(), 0);
  auto& d = s.make<Wire<int>>(s.tracker(), 0);
  s.make<Reg>(s, "reg", d, q);
  s.make<Inc>(s, "inc", q, d);
  EXPECT_EQ(s.component_count(), 2u);
  s.reset();
  s.run(7);
  s.settle();
  EXPECT_EQ(q.get(), 7);
}

TEST(Simulator, MakeRejectsComponentOfForeignSimulator) {
  // Simulator::make owns the object, but a Component registers itself with
  // the simulator passed to its *constructor*. Mixing the two used to
  // silently produce a component owned by one simulator and clocked (and
  // change-tracked) by another; now it throws.
  Simulator a;
  Simulator b;
  auto& d = a.make<Wire<int>>(a.tracker(), 0);
  auto& q = a.make<Wire<int>>(a.tracker(), 0);
  EXPECT_THROW(a.make<Reg>(b, "foreign", d, q), SimulationError);
  // The rejected component is fully unregistered from the foreign
  // simulator: b still works and owns nothing.
  EXPECT_EQ(b.component_count(), 0u);
  b.reset();
  b.run(3);
  EXPECT_EQ(b.now(), 3u);
  // Constructing through the owning simulator is fine.
  auto& reg = a.make<Reg>(a, "own", d, q);
  EXPECT_EQ(reg.name(), "own");
  EXPECT_EQ(a.component_count(), 1u);
}

TEST(Simulator, KernelSelectionAndSwitching) {
  Simulator s(KernelKind::kNaive);
  EXPECT_EQ(s.kernel(), KernelKind::kNaive);
  Wire<int> q(s.tracker(), 0);
  Wire<int> d(s.tracker(), 0);
  Reg reg(s, "reg", d, q);
  Inc inc(s, "inc", q, d);
  s.reset();
  s.run(4);
  // Mid-run kernel switch keeps the architectural state.
  s.set_kernel(KernelKind::kEventDriven);
  EXPECT_EQ(s.kernel(), KernelKind::kEventDriven);
  s.run(4);
  s.settle();
  EXPECT_EQ(q.get(), 8);
  s.set_kernel(KernelKind::kNaive);
  s.run(2);
  s.settle();
  EXPECT_EQ(q.get(), 10);
}

TEST(Simulator, EventKernelDefaultAndFewerEvals) {
  // The event-driven kernel is the default and does strictly less settle
  // work than the naive reference on a register pipeline.
  Simulator ev;
  EXPECT_EQ(ev.kernel(), KernelKind::kEventDriven);
  Simulator nv(KernelKind::kNaive);
  auto build = [](Simulator& s, std::vector<std::unique_ptr<Wire<int>>>& wires,
                  std::vector<std::unique_ptr<Component>>& comps) {
    wires.push_back(std::make_unique<Wire<int>>(s.tracker(), 0));
    for (int i = 0; i < 8; ++i) {
      wires.push_back(std::make_unique<Wire<int>>(s.tracker(), 0));
      comps.push_back(std::make_unique<Inc>(s, "inc" + std::to_string(i),
                                            *wires[wires.size() - 2], *wires.back()));
    }
    comps.push_back(std::make_unique<Reg>(s, "reg", *wires.back(), *wires.front()));
  };
  std::vector<std::unique_ptr<Wire<int>>> we, wn;
  std::vector<std::unique_ptr<Component>> ce, cn;
  build(ev, we, ce);
  build(nv, wn, cn);
  ev.reset();
  nv.reset();
  ev.run(50);
  nv.run(50);
  EXPECT_EQ(we.front()->get(), wn.front()->get());
  EXPECT_LT(ev.eval_count(), nv.eval_count());
}

TEST(Simulator, DeepCombinationalChainSettles) {
  // 50 chained incrementers settle within the automatic limit.
  Simulator s;
  Wire<int> q(s.tracker(), 0);
  Wire<int> d0(s.tracker(), 0);
  Reg reg(s, "reg", d0, q);
  std::vector<std::unique_ptr<Wire<int>>> wires;
  std::vector<std::unique_ptr<Inc>> incs;
  Wire<int>* prev = &q;
  for (int i = 0; i < 50; ++i) {
    wires.push_back(std::make_unique<Wire<int>>(s.tracker(), 0));
    incs.push_back(std::make_unique<Inc>(s, "inc" + std::to_string(i), *prev,
                                         *wires.back()));
    prev = wires.back().get();
  }
  // Close the loop: last chain output feeds the register input.
  incs.push_back(std::make_unique<Inc>(s, "close", *prev, d0));
  s.reset();
  s.run(2);
  s.settle();
  EXPECT_EQ(q.get(), 2 * 51);
}

}  // namespace
}  // namespace mte::sim
