#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace mte::sim {
namespace {

TEST(TraceRecorder, RecordsEventsInOrder) {
  TraceRecorder rec;
  rec.record(1, "ch0", 0, 100);
  rec.record(2, "ch1", 1, 200);
  rec.record(3, "ch0", 1, 300);
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0], (TransferEvent{1, "ch0", 0, 100}));
  EXPECT_EQ(rec.events()[2], (TransferEvent{3, "ch0", 1, 300}));
}

TEST(TraceRecorder, ChannelFilter) {
  TraceRecorder rec;
  rec.record(1, "a", 0, 1);
  rec.record(2, "b", 0, 2);
  rec.record(3, "a", 1, 3);
  const auto a = rec.channel_events("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].tag, 1u);
  EXPECT_EQ(a[1].tag, 3u);
}

TEST(TraceRecorder, TagsByChannelAndThread) {
  TraceRecorder rec;
  rec.record(1, "a", 0, 10);
  rec.record(2, "a", 1, 20);
  rec.record(3, "a", 0, 30);
  EXPECT_EQ(rec.tags("a", 0), (std::vector<std::uint64_t>{10, 30}));
  EXPECT_EQ(rec.tags("a", 1), (std::vector<std::uint64_t>{20}));
  EXPECT_TRUE(rec.tags("missing", 0).empty());
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder rec;
  rec.record(1, "a", 0, 1);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, UnboundedByDefault) {
  TraceRecorder rec;
  EXPECT_EQ(rec.capacity(), 0u);
  for (Cycle c = 0; c < 1000; ++c) rec.record(c, "a", 0, c);
  EXPECT_EQ(rec.events().size(), 1000u);
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST(TraceRecorder, RingKeepsMostRecentInChronologicalOrder) {
  TraceRecorder rec;
  rec.set_capacity(3);
  for (Cycle c = 1; c <= 5; ++c) rec.record(c, "a", 0, c * 10);
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].tag, 30u);  // oldest retained
  EXPECT_EQ(rec.events()[1].tag, 40u);
  EXPECT_EQ(rec.events()[2].tag, 50u);
  EXPECT_EQ(rec.dropped_events(), 2u);
  // Recording resumes correctly after a read unrotated the ring.
  rec.record(6, "a", 0, 60);
  EXPECT_EQ(rec.events()[0].tag, 40u);
  EXPECT_EQ(rec.events()[2].tag, 60u);
  EXPECT_EQ(rec.dropped_events(), 3u);
}

TEST(TraceRecorder, RingFiltersSeeChronologicalOrder) {
  TraceRecorder rec;
  rec.set_capacity(4);
  for (Cycle c = 1; c <= 7; ++c) rec.record(c, c % 2 == 0 ? "even" : "odd", 0, c);
  EXPECT_EQ(rec.tags("even", 0), (std::vector<std::uint64_t>{4, 6}));
  EXPECT_EQ(rec.tags("odd", 0), (std::vector<std::uint64_t>{5, 7}));
}

TEST(TraceRecorder, ShrinkingCapacityDropsOldestImmediately) {
  TraceRecorder rec;
  for (Cycle c = 1; c <= 6; ++c) rec.record(c, "a", 0, c);
  rec.set_capacity(2);
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[0].tag, 5u);
  EXPECT_EQ(rec.events()[1].tag, 6u);
  EXPECT_EQ(rec.dropped_events(), 4u);
}

TEST(TraceRecorder, ClearResetsRingAndDropCounter) {
  TraceRecorder rec;
  rec.set_capacity(2);
  for (Cycle c = 1; c <= 5; ++c) rec.record(c, "a", 0, c);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped_events(), 0u);
  EXPECT_EQ(rec.capacity(), 2u);  // the bound itself is configuration
  rec.record(9, "a", 0, 9);
  EXPECT_EQ(rec.events().size(), 1u);
}

TEST(Timeline, RendersCellsAndGaps) {
  Timeline tl;
  tl.put("input", 0, "A0");
  tl.put("input", 2, "B0");
  tl.put("output", 1, "A0");
  const std::string text = tl.render();
  EXPECT_NE(text.find("input"), std::string::npos);
  EXPECT_NE(text.find("output"), std::string::npos);
  EXPECT_NE(text.find("A0"), std::string::npos);
  EXPECT_NE(text.find("B0"), std::string::npos);
  EXPECT_NE(text.find("."), std::string::npos);  // gap marker
}

TEST(Timeline, RowOrderFollowsDeclaration) {
  Timeline tl;
  tl.declare_row("second");
  tl.declare_row("first");
  tl.put("first", 0, "x");
  tl.put("second", 0, "y");
  const std::string text = tl.render();
  EXPECT_LT(text.find("second"), text.find("first"));
}

TEST(Timeline, EmptyRenders) {
  Timeline tl;
  EXPECT_EQ(tl.render(), "(empty timeline)\n");
}

TEST(Timeline, RangeRender) {
  Timeline tl;
  tl.put("r", 0, "a");
  tl.put("r", 5, "b");
  const std::string text = tl.render(4, 6);
  EXPECT_EQ(text.find("\"a\""), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
}

}  // namespace
}  // namespace mte::sim
