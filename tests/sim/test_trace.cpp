#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace mte::sim {
namespace {

TEST(TraceRecorder, RecordsEventsInOrder) {
  TraceRecorder rec;
  rec.record(1, "ch0", 0, 100);
  rec.record(2, "ch1", 1, 200);
  rec.record(3, "ch0", 1, 300);
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0], (TransferEvent{1, "ch0", 0, 100}));
  EXPECT_EQ(rec.events()[2], (TransferEvent{3, "ch0", 1, 300}));
}

TEST(TraceRecorder, ChannelFilter) {
  TraceRecorder rec;
  rec.record(1, "a", 0, 1);
  rec.record(2, "b", 0, 2);
  rec.record(3, "a", 1, 3);
  const auto a = rec.channel_events("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].tag, 1u);
  EXPECT_EQ(a[1].tag, 3u);
}

TEST(TraceRecorder, TagsByChannelAndThread) {
  TraceRecorder rec;
  rec.record(1, "a", 0, 10);
  rec.record(2, "a", 1, 20);
  rec.record(3, "a", 0, 30);
  EXPECT_EQ(rec.tags("a", 0), (std::vector<std::uint64_t>{10, 30}));
  EXPECT_EQ(rec.tags("a", 1), (std::vector<std::uint64_t>{20}));
  EXPECT_TRUE(rec.tags("missing", 0).empty());
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder rec;
  rec.record(1, "a", 0, 1);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
}

TEST(Timeline, RendersCellsAndGaps) {
  Timeline tl;
  tl.put("input", 0, "A0");
  tl.put("input", 2, "B0");
  tl.put("output", 1, "A0");
  const std::string text = tl.render();
  EXPECT_NE(text.find("input"), std::string::npos);
  EXPECT_NE(text.find("output"), std::string::npos);
  EXPECT_NE(text.find("A0"), std::string::npos);
  EXPECT_NE(text.find("B0"), std::string::npos);
  EXPECT_NE(text.find("."), std::string::npos);  // gap marker
}

TEST(Timeline, RowOrderFollowsDeclaration) {
  Timeline tl;
  tl.declare_row("second");
  tl.declare_row("first");
  tl.put("first", 0, "x");
  tl.put("second", 0, "y");
  const std::string text = tl.render();
  EXPECT_LT(text.find("second"), text.find("first"));
}

TEST(Timeline, EmptyRenders) {
  Timeline tl;
  EXPECT_EQ(tl.render(), "(empty timeline)\n");
}

TEST(Timeline, RangeRender) {
  Timeline tl;
  tl.put("r", 0, "a");
  tl.put("r", 5, "b");
  const std::string text = tl.render(4, 6);
  EXPECT_EQ(text.find("\"a\""), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
}

}  // namespace
}  // namespace mte::sim
