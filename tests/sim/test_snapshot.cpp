// Checkpoint/restore (Simulator::save / Simulator::restore):
//  - snapshot differ: reset + rerun must produce byte-identical snapshots
//    on every curated circuit under both kernels (reset() completeness);
//  - resume equivalence: a restored simulator must be cycle-for-cycle
//    wire-identical to the straight run it resumes, end with a
//    byte-identical snapshot and identical probe statistics;
//  - cross-kernel restore: a snapshot taken under the naive kernel must
//    restore under the event-driven kernel (and vice versa) because
//    restore rematerializes scheduler state instead of trusting it;
//  - malformed snapshots (bad magic/version, truncation, trailing bytes,
//    payload corruption, wrong circuit) must be rejected loudly;
//  - trace observers restart empty after a restore, with event cycles
//    continuing from the snapshot cycle (documented semantics: the
//    TraceRecorder is external to the simulator and is NOT checkpointed,
//    unlike ChannelProbe statistics which restore with the snapshot).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "elastic/elastic_buffer.hpp"
#include "elastic/probe.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "kernel_lockstep.hpp"
#include "md5/md5_circuit.hpp"
#include "sim/snapshot.hpp"
#include "snapshot_circuits.hpp"

namespace {

using namespace mte;
using kerneltest::channels_equal;
using kerneltest::probes_equal;
using netlist::Elaboration;
using snaptest::SnapshotCase;
using snaptest::snapshot_cases;

std::string snapshot_of(sim::Simulator& s) {
  std::ostringstream os;
  s.save(os);
  return os.str();
}

void restore_from(sim::Simulator& s, const std::string& bytes) {
  std::istringstream is(bytes);
  s.restore(is);
}

std::unique_ptr<Elaboration> make_elab(const SnapshotCase& c, sim::KernelKind kernel) {
  static const auto registry = netlist::FunctionRegistry::with_defaults();
  static const auto factory = netlist::ComponentFactory::defaults();
  netlist::ElaborationOptions opt;
  opt.kernel = kernel;
  opt.meb_shared_slots = c.meb_shared_slots;
  auto e = std::make_unique<Elaboration>(c.net, registry, factory, opt);
  c.configure(*e);
  e->simulator().reset();
  return e;
}

void step_n(sim::Simulator& s, sim::Cycle n) {
  for (sim::Cycle i = 0; i < n; ++i) s.step();
}

constexpr std::array<sim::KernelKind, 2> kKernels = {sim::KernelKind::kNaive,
                                                     sim::KernelKind::kEventDriven};

const char* kernel_name(sim::KernelKind k) {
  return k == sim::KernelKind::kNaive ? "naive" : "event";
}

// --- snapshot differ ---------------------------------------------------------

// save -> reset -> run K -> save must byte-match run-K-from-fresh -> save:
// any component whose reset() misses a field its save_state() covers (or
// vice versa) diverges here.
TEST(SnapshotDiffer, ResetRerunByteIdentical) {
  for (const auto& c : snapshot_cases()) {
    for (const auto kernel : kKernels) {
      SCOPED_TRACE(c.name + std::string(" / ") + kernel_name(kernel));
      auto e = make_elab(c, kernel);
      step_n(e->simulator(), 400);
      const std::string fresh = snapshot_of(e->simulator());

      e->simulator().reset();
      step_n(e->simulator(), 400);
      const std::string rerun = snapshot_of(e->simulator());
      EXPECT_EQ(fresh, rerun) << "reset() does not reproduce the fresh-run state";
    }
  }
}

// --- resume equivalence ------------------------------------------------------

TEST(SnapshotRestore, ResumeMatchesStraightRun) {
  constexpr sim::Cycle kWarm = 250;
  constexpr sim::Cycle kTail = 250;
  for (const auto& c : snapshot_cases()) {
    for (const auto kernel : kKernels) {
      SCOPED_TRACE(c.name + std::string(" / ") + kernel_name(kernel));
      auto straight = make_elab(c, kernel);
      step_n(straight->simulator(), kWarm);
      const std::string snap = snapshot_of(straight->simulator());

      auto resumed = make_elab(c, kernel);
      restore_from(resumed->simulator(), snap);
      ASSERT_EQ(resumed->simulator().now(), kWarm);

      const auto names = straight->channel_names();
      for (sim::Cycle i = 0; i < kTail; ++i) {
        straight->simulator().step();
        resumed->simulator().step();
        const auto wires = channels_equal(*straight, *resumed, names);
        if (!wires) {
          ADD_FAILURE() << wires.message() << " at cycle " << kWarm + i + 1;
          return;
        }
      }
      EXPECT_TRUE(probes_equal(*straight, *resumed, names));
      EXPECT_EQ(snapshot_of(straight->simulator()), snapshot_of(resumed->simulator()))
          << "resumed run diverged from the straight run it restored";
    }
  }
}

TEST(SnapshotRestore, CrossKernelRestore) {
  constexpr sim::Cycle kWarm = 250;
  constexpr sim::Cycle kTail = 250;
  for (const auto& c : snapshot_cases()) {
    for (const auto save_kernel : kKernels) {
      const auto restore_kernel = save_kernel == sim::KernelKind::kNaive
                                      ? sim::KernelKind::kEventDriven
                                      : sim::KernelKind::kNaive;
      SCOPED_TRACE(c.name + std::string(" / save=") + kernel_name(save_kernel) +
                   " restore=" + kernel_name(restore_kernel));
      auto saver = make_elab(c, save_kernel);
      step_n(saver->simulator(), kWarm);
      const std::string snap = snapshot_of(saver->simulator());

      // Straight run under the restore kernel is the reference.
      auto straight = make_elab(c, restore_kernel);
      step_n(straight->simulator(), kWarm);
      auto resumed = make_elab(c, restore_kernel);
      restore_from(resumed->simulator(), snap);
      ASSERT_EQ(resumed->simulator().now(), kWarm);

      const auto names = straight->channel_names();
      for (sim::Cycle i = 0; i < kTail; ++i) {
        straight->simulator().step();
        resumed->simulator().step();
        const auto wires = channels_equal(*straight, *resumed, names);
        if (!wires) {
          ADD_FAILURE() << wires.message() << " at cycle " << kWarm + i + 1;
          return;
        }
      }
      EXPECT_EQ(snapshot_of(straight->simulator()), snapshot_of(resumed->simulator()));
    }
  }
}

// --- malformed snapshots -----------------------------------------------------

class SnapshotRejectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    case_ = snapshot_cases().front();  // fig1_full_rate
    auto e = make_elab(case_, sim::KernelKind::kEventDriven);
    step_n(e->simulator(), 100);
    snap_ = snapshot_of(e->simulator());
  }

  void expect_reject(const std::string& bytes, const std::string& what) {
    auto e = make_elab(case_, sim::KernelKind::kEventDriven);
    EXPECT_THROW(restore_from(e->simulator(), bytes), sim::SnapshotError) << what;
  }

  SnapshotCase case_;
  std::string snap_;
};

TEST_F(SnapshotRejectTest, BadMagic) {
  std::string s = snap_;
  s[0] ^= 0x40;
  expect_reject(s, "bad magic");
}

TEST_F(SnapshotRejectTest, VersionMismatch) {
  std::string s = snap_;
  s[8] = static_cast<char>(sim::kSnapshotVersion + 1);  // version u32 LE at offset 8
  expect_reject(s, "future version");
}

TEST_F(SnapshotRejectTest, Truncated) {
  expect_reject(snap_.substr(0, 4), "cut inside the magic");
  expect_reject(snap_.substr(0, snap_.size() / 2), "cut mid-payload");
  expect_reject(snap_.substr(0, snap_.size() - 1), "one byte short");
}

TEST_F(SnapshotRejectTest, TrailingGarbage) {
  expect_reject(snap_ + "tail", "trailing bytes");
}

TEST_F(SnapshotRejectTest, PayloadCorruption) {
  // Flip a byte of the last component's CRC32 (the 4 bytes right before
  // the 8-byte end marker): the frame check must fail loudly, never
  // restore silently.
  std::string s = snap_;
  s[s.size() - 9] ^= 0x01;
  expect_reject(s, "corrupt component frame CRC");
}

TEST_F(SnapshotRejectTest, WrongCircuit) {
  const auto cases = snapshot_cases();
  const auto& other = cases[2];  // fork_join_diamond
  auto e = make_elab(other, sim::KernelKind::kEventDriven);
  EXPECT_THROW(restore_from(e->simulator(), snap_), sim::SnapshotError);
}

// --- md5 digest cross-check --------------------------------------------------

sim::Cycle md5_run_to_done(md5::Md5Circuit& c, sim::Cycle max_cycles = 1u << 20) {
  while (!c.feeder().all_done()) {
    if (c.simulator().now() >= max_cycles) return 0;
    c.simulator().step();
  }
  return c.simulator().now();
}

TEST(SnapshotRestore, Md5DigestCrossCheck) {
  const std::vector<std::string> msgs = {"checkpoint", std::string(100, 'x'),
                                         "restore me"};
  for (const mt::MebKind kind : {mt::MebKind::kFull, mt::MebKind::kReduced}) {
    SCOPED_TRACE(to_string(kind));
    // Straight run for the reference cycle count.
    md5::Md5Circuit straight(msgs.size(), kind);
    for (std::size_t t = 0; t < msgs.size(); ++t) straight.set_message(t, msgs[t]);
    straight.simulator().reset();
    const sim::Cycle total = md5_run_to_done(straight);
    ASSERT_GT(total, 2u);
    const sim::Cycle warm = total / 2;

    // Save mid-flight under the naive kernel...
    md5::Md5Circuit saver(msgs.size(), kind, sim::KernelKind::kNaive);
    for (std::size_t t = 0; t < msgs.size(); ++t) saver.set_message(t, msgs[t]);
    saver.simulator().reset();
    for (sim::Cycle i = 0; i < warm; ++i) saver.simulator().step();
    ASSERT_FALSE(saver.feeder().all_done());
    std::ostringstream os;
    saver.simulator().save(os);

    // ...and restore under the event-driven kernel (the default).
    md5::Md5Circuit resumed(msgs.size(), kind);
    for (std::size_t t = 0; t < msgs.size(); ++t) resumed.set_message(t, msgs[t]);
    resumed.simulator().reset();
    std::istringstream is(os.str());
    resumed.simulator().restore(is);
    ASSERT_EQ(resumed.simulator().now(), warm);
    ASSERT_EQ(md5_run_to_done(resumed), total);
    for (std::size_t t = 0; t < msgs.size(); ++t) {
      EXPECT_EQ(resumed.digest_hex(t), md5::hex_digest(msgs[t])) << "thread " << t;
    }
  }
}

// --- trace observers across restore ------------------------------------------

namespace tracetest {

struct Rig {
  explicit Rig(sim::TraceRecorder& rec) : probe(s, out, rec, [](std::uint64_t v) {
    return v;
  }) {}
  sim::Simulator s;
  elastic::Channel<std::uint64_t> in{s, "in"};
  elastic::Channel<std::uint64_t> out{s, "out"};
  elastic::Source<std::uint64_t> src{s, "src", in};
  elastic::ElasticBuffer<std::uint64_t> eb{s, "eb", in, out};
  elastic::Sink<std::uint64_t> sink{s, "sink", out};
  elastic::Probe<std::uint64_t> probe;
};

}  // namespace tracetest

TEST(SnapshotRestore, TraceObserversRestartEmptyWithContinuedCycles) {
  sim::TraceRecorder full;
  tracetest::Rig straight(full);
  straight.src.set_generator([](std::uint64_t i) { return i; });
  straight.sink.set_rate(0.7, 9);
  straight.s.reset();
  step_n(straight.s, 120);

  sim::TraceRecorder warm_rec;
  tracetest::Rig warm(warm_rec);
  warm.src.set_generator([](std::uint64_t i) { return i; });
  warm.sink.set_rate(0.7, 9);
  warm.s.reset();
  step_n(warm.s, 60);
  const std::string snap = snapshot_of(warm.s);

  sim::TraceRecorder tail_rec;
  tracetest::Rig resumed(tail_rec);
  resumed.src.set_generator([](std::uint64_t i) { return i; });
  resumed.sink.set_rate(0.7, 9);
  resumed.s.reset();
  restore_from(resumed.s, snap);
  EXPECT_TRUE(tail_rec.events().empty()) << "restore must not synthesize trace events";
  step_n(resumed.s, 60);

  // The restarted recorder holds exactly the straight run's events after
  // the snapshot point, with their original (continued) cycle stamps.
  // tick() fires while now() is still the pre-increment cycle, so the
  // first step after a restore at cycle 60 records events stamped 60.
  std::vector<sim::TransferEvent> expected;
  for (const auto& ev : full.events()) {
    if (ev.cycle >= 60) expected.push_back(ev);
  }
  EXPECT_EQ(tail_rec.events(), expected);
}

// --- probe counters restore (not restart) ------------------------------------

TEST(SnapshotRestore, ChannelProbeCountersRestoreFromSnapshot) {
  const auto cases = snapshot_cases();
  const auto& c = cases[1];  // fig1_backpressured: nontrivial waits
  auto a = make_elab(c, sim::KernelKind::kEventDriven);
  step_n(a->simulator(), 300);
  const std::string snap = snapshot_of(a->simulator());

  auto b = make_elab(c, sim::KernelKind::kEventDriven);
  restore_from(b->simulator(), snap);
  for (const auto& name : a->channel_names()) {
    EXPECT_EQ(a->probe(name).count(), b->probe(name).count()) << name;
    EXPECT_EQ(a->probe(name).cycles(), b->probe(name).cycles()) << name;
    EXPECT_EQ(a->probe(name).mean_wait(), b->probe(name).mean_wait()) << name;
    EXPECT_EQ(a->probe(name).last_value(), b->probe(name).last_value()) << name;
  }
  EXPECT_GT(a->probe(a->channel_names().front()).count(), 0u);
}

}  // namespace
