// Tick elision: a fully stalled elastic structure must cost the event
// kernel NOTHING — quiescent components are neither ticked nor
// re-evaluated for the whole stall (observed through the kernel-maintained
// per-component call counters), and when the stall releases mid-run the
// simulation stays lockstep-equal to the naive reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "elastic/channel.hpp"
#include "elastic/elastic_buffer.hpp"
#include "elastic/function_unit.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "mt/full_meb.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mte;
using Word = std::uint64_t;

/// src -> eb0 -> fu(+1) -> eb1 -> sink, hand-built so the test can reach
/// the component counters directly.
struct StPipeline {
  explicit StPipeline(sim::KernelKind kernel) : s(kernel) {
    for (int i = 0; i < 4; ++i) {
      ch.push_back(&s.make<elastic::Channel<Word>>(s, "c" + std::to_string(i)));
    }
    src = &s.make<elastic::Source<Word>>(s, "src", *ch[0]);
    eb0 = &s.make<elastic::ElasticBuffer<Word>>(s, "eb0", *ch[0], *ch[1]);
    fu = &s.make<elastic::FunctionUnit<Word, Word>>(
        s, "fu", *ch[1], *ch[2], [](const Word& v) { return v + 1; });
    eb1 = &s.make<elastic::ElasticBuffer<Word>>(s, "eb1", *ch[2], *ch[3]);
    sink = &s.make<elastic::Sink<Word>>(s, "sink", *ch[3]);
    src->set_generator([](std::uint64_t i) { return 10 * i; });
    s.reset();
  }

  sim::Simulator s;
  std::vector<elastic::Channel<Word>*> ch;
  elastic::Source<Word>* src = nullptr;
  elastic::ElasticBuffer<Word>* eb0 = nullptr;
  elastic::FunctionUnit<Word, Word>* fu = nullptr;
  elastic::ElasticBuffer<Word>* eb1 = nullptr;
  elastic::Sink<Word>* sink = nullptr;
};

::testing::AssertionResult channels_equal(const StPipeline& a, const StPipeline& b) {
  for (std::size_t i = 0; i < a.ch.size(); ++i) {
    if (a.ch[i]->valid.get() != b.ch[i]->valid.get() ||
        a.ch[i]->ready.get() != b.ch[i]->ready.get() ||
        a.ch[i]->data.get() != b.ch[i]->data.get()) {
      return ::testing::AssertionFailure() << "channel " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(TickElision, StalledStPipelineFreezesBuffersAndWakesLockstep) {
  // The sink refuses everything during [40, 200): the EB chain fills to
  // FULL and every buffer becomes quiescent. The naive pipeline runs
  // alongside as the oracle for the whole run, including the release.
  StPipeline ev(sim::KernelKind::kEventDriven);
  StPipeline na(sim::KernelKind::kNaive);
  ev.sink->add_stall_window(40, 200);
  na.sink->add_stall_window(40, 200);

  const auto step_both = [&] {
    ev.s.step();
    na.s.step();
    ASSERT_TRUE(channels_equal(ev, na)) << "at cycle " << ev.s.now();
  };

  for (int i = 0; i < 60; ++i) step_both();  // stall hit, buffers filled

  // Steady stalled state: capture the counters...
  const std::uint64_t eb0_evals = ev.eb0->kernel_eval_calls();
  const std::uint64_t eb0_ticks = ev.eb0->kernel_tick_calls();
  const std::uint64_t eb1_evals = ev.eb1->kernel_eval_calls();
  const std::uint64_t eb1_ticks = ev.eb1->kernel_tick_calls();
  const std::uint64_t fu_evals = ev.fu->kernel_eval_calls();
  const std::uint64_t sim_evals = ev.s.eval_count();
  const std::uint64_t elided = ev.s.elided_tick_count();

  for (int i = 0; i < 100; ++i) step_both();  // ...and run deep into the stall

  // Zero ticks, zero evals for the quiescent components over 100 cycles.
  EXPECT_EQ(ev.eb0->kernel_eval_calls(), eb0_evals);
  EXPECT_EQ(ev.eb0->kernel_tick_calls(), eb0_ticks);
  EXPECT_EQ(ev.eb1->kernel_eval_calls(), eb1_evals);
  EXPECT_EQ(ev.eb1->kernel_tick_calls(), eb1_ticks);
  EXPECT_EQ(ev.fu->kernel_eval_calls(), fu_evals);
  EXPECT_EQ(ev.s.elided_tick_count(), elided + 2 * 100);  // both EBs, every cycle
  // The whole simulator idles at the source/sink floor (their state can
  // move, so they are never elided).
  EXPECT_LE(ev.s.eval_count() - sim_evals, 2 * 100u);

  // Release mid-run: the buffers wake the very cycle the sink's ready
  // rises, and the run stays lockstep-equal with tokens flowing again.
  const std::uint64_t delivered_before = ev.sink->count();
  for (int i = 0; i < 140; ++i) step_both();
  EXPECT_GT(ev.sink->count(), delivered_before + 90);
  EXPECT_GT(ev.eb0->kernel_tick_calls(), eb0_ticks);
  EXPECT_EQ(ev.sink->received(), na.sink->received());
}

TEST(TickElision, StarvedMebPipelineFreezesAndWakesLockstep) {
  // Multithreaded flavour: both source threads stop offering during
  // [60, 260) and the MEBs drain empty. An empty MEB's arbiter has no
  // pending thread (no speculative rotation), so the whole stage is
  // quiescent until tokens return.
  const std::size_t kThreads = 2;
  const auto build = [&](sim::KernelKind kernel, auto&& body) {
    sim::Simulator s(kernel);
    auto& c0 = s.make<mt::MtChannel<Word>>(s, "c0", kThreads);
    auto& c1 = s.make<mt::MtChannel<Word>>(s, "c1", kThreads);
    auto& c2 = s.make<mt::MtChannel<Word>>(s, "c2", kThreads);
    auto& src = s.make<mt::MtSource<Word>>(s, "src", c0);
    auto& m0 = s.make<mt::FullMeb<Word>>(s, "m0", c0, c1);
    auto& m1 = s.make<mt::FullMeb<Word>>(s, "m1", c1, c2);
    auto& sink = s.make<mt::MtSink<Word>>(s, "sink", c2);
    for (std::size_t t = 0; t < kThreads; ++t) {
      src.set_generator(t, [t](std::uint64_t i) { return (t << 20) + i; });
      src.add_stall_window(t, 60, 260);
    }
    s.reset();
    body(s, src, m0, m1, sink);
  };

  std::vector<std::pair<std::size_t, Word>> naive_order;
  build(sim::KernelKind::kNaive,
        [&](sim::Simulator& s, auto& /*src*/, auto& /*m0*/, auto& /*m1*/, auto& sink) {
          s.run(400);
          naive_order = sink.order();
        });

  build(sim::KernelKind::kEventDriven,
        [&](sim::Simulator& s, auto& /*src*/, auto& m0, auto& m1, auto& sink) {
          s.run(100);  // stall hit at 60; a drained pipeline by ~70
          const std::uint64_t m0_evals = m0.kernel_eval_calls();
          const std::uint64_t m0_ticks = m0.kernel_tick_calls();
          const std::uint64_t m1_evals = m1.kernel_eval_calls();
          const std::uint64_t m1_ticks = m1.kernel_tick_calls();
          s.run(150);
          EXPECT_EQ(m0.kernel_eval_calls(), m0_evals);
          EXPECT_EQ(m0.kernel_tick_calls(), m0_ticks);
          EXPECT_EQ(m1.kernel_eval_calls(), m1_evals);
          EXPECT_EQ(m1.kernel_tick_calls(), m1_ticks);
          EXPECT_EQ(m0.total_occupancy(), 0);
          s.run(150);  // release at 260; tokens flow again
          EXPECT_GT(m0.kernel_tick_calls(), m0_ticks);
          EXPECT_EQ(sink.order(), naive_order);  // lockstep-equal delivery
        });
}

TEST(TickElision, NaiveKernelNeverElides) {
  StPipeline na(sim::KernelKind::kNaive);
  na.sink->add_stall_window(10, 80);
  const std::uint64_t ticks = na.eb0->kernel_tick_calls();
  na.s.run(100);
  EXPECT_EQ(na.eb0->kernel_tick_calls(), ticks + 100);
  EXPECT_EQ(na.s.elided_tick_count(), 0u);
}

}  // namespace
