// Curated circuit list for the checkpoint/restore test suite: the same
// representative designs the kernel-equivalence tests exercise (fig1
// single-thread flows, fork/join diamonds, branch/merge routing,
// variable-latency units, fig5 MEB pipelines, MEB operator pipelines,
// multithreaded var-latency, hybrid-MEB capacity points), packaged as
// data so the snapshot differ and the save/restore lockstep tests can
// iterate over every one of them under both kernels.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "netlist/builder.hpp"

namespace mte::snaptest {

struct SnapshotCase {
  std::string name;
  netlist::Netlist net;
  /// Deterministic workload configuration; applied identically to every
  /// elaboration of the case (rates, generators and stall windows are
  /// configuration, not snapshot state).
  std::function<void(netlist::Elaboration&)> configure;
  /// When set, buffers elaborate to HybridMeb with this many shared slots.
  std::optional<std::size_t> meb_shared_slots;
};

inline netlist::Netlist fig1_pipeline() {
  netlist::CircuitBuilder b;
  b.source("src") >> b.buffer("b0") >> b.function("sq", "square") >>
      b.buffer("b1") >> b.sink("out");
  return b.build();
}

inline netlist::Netlist fig5_pipeline(std::size_t threads, mt::MebKind kind) {
  netlist::CircuitBuilder b;
  b.source("src") >> b.buffer("meb0") >> b.buffer("meb1") >> b.sink("sink");
  b.then_multithreaded(threads, kind);
  return b.build();
}

inline netlist::Netlist meb_operator_pipeline(std::size_t threads, mt::MebKind kind) {
  netlist::CircuitBuilder b;
  auto stage = b.source("src") >> b.buffer("m0") >> b.function("fu0", "inc");
  for (int i = 1; i < 4; ++i) {
    stage = stage >> b.buffer("m" + std::to_string(i)) >>
            b.function("fu" + std::to_string(i), "double");
  }
  stage >> b.sink("sink");
  b.then_multithreaded(threads, kind);
  return b.build();
}

inline void fig5_workload(netlist::Elaboration& e) {
  auto& src = e.mt_source("src");
  auto& sink = e.mt_sink("sink");
  for (std::size_t t = 0; t < e.threads(); ++t) {
    src.set_generator(t, [t](std::uint64_t i) { return 1000 * t + i; });
  }
  sink.add_stall_window(1, 4, 26);
}

inline void contended_workload(netlist::Elaboration& e) {
  auto& src = e.mt_source("src");
  auto& sink = e.mt_sink("sink");
  for (std::size_t t = 0; t < e.threads(); ++t) {
    src.set_generator(t, [t](std::uint64_t i) { return (t << 32) + i; });
    src.set_rate(t, 0.9, 17 + t);
    sink.set_rate(t, 0.7, 29 + t);
  }
}

inline std::vector<SnapshotCase> snapshot_cases() {
  std::vector<SnapshotCase> cases;

  cases.push_back({"fig1_full_rate", fig1_pipeline(),
                   [](netlist::Elaboration& e) {
                     e.source("src").set_generator([](std::uint64_t i) { return i; });
                   },
                   std::nullopt});

  cases.push_back({"fig1_backpressured", fig1_pipeline(),
                   [](netlist::Elaboration& e) {
                     e.source("src").set_generator([](std::uint64_t i) { return i; });
                     e.source("src").set_rate(0.8, 7);
                     e.sink("out").set_rate(0.6, 11);
                   },
                   std::nullopt});

  {
    netlist::CircuitBuilder b;
    b.source("src") >> b.fork("f", 2);
    b.node("f").out(0) >> b.buffer("ba") >> b.function("fa", "inc") >>
        b.join("j", 2).in(0);
    b.node("f").out(1) >> b.buffer("bb") >> b.buffer("bb2") >> b.node("j").in(1);
    b.node("j") >> b.buffer("bo") >> b.sink("out");
    cases.push_back({"fork_join_diamond", b.build(),
                     [](netlist::Elaboration& e) {
                       e.source("src").set_generator(
                           [](std::uint64_t i) { return i + 1; });
                       e.sink("out").set_rate(0.7, 3);
                     },
                     std::nullopt});
  }

  {
    netlist::CircuitBuilder b;
    b.source("src") >> b.branch("br", "even");
    b.node("br").when_true() >> b.buffer("bt") >> b.merge("mg", 2).in(0);
    b.node("br").when_false() >> b.buffer("bf") >> b.node("mg").in(1);
    b.node("mg") >> b.sink("out");
    cases.push_back({"branch_merge_routing", b.build(),
                     [](netlist::Elaboration& e) {
                       e.source("src").set_generator(
                           [](std::uint64_t i) { return 3 * i + 1; });
                     },
                     std::nullopt});
  }

  {
    netlist::CircuitBuilder b;
    b.source("src") >> b.buffer("b0") >> b.var_latency("vl", 1, 5) >>
        b.buffer("b1") >> b.sink("out");
    cases.push_back({"var_latency_st", b.build(),
                     [](netlist::Elaboration& e) {
                       e.source("src").set_generator([](std::uint64_t i) { return i; });
                       e.sink("out").set_rate(0.85, 5);
                     },
                     std::nullopt});
  }

  cases.push_back(
      {"fig5_full_meb", fig5_pipeline(2, mt::MebKind::kFull), fig5_workload,
       std::nullopt});
  cases.push_back(
      {"fig5_reduced_meb", fig5_pipeline(2, mt::MebKind::kReduced), fig5_workload,
       std::nullopt});
  cases.push_back({"meb_operator_pipeline_s4_full",
                   meb_operator_pipeline(4, mt::MebKind::kFull), contended_workload,
                   std::nullopt});
  cases.push_back({"meb_operator_pipeline_s4_reduced",
                   meb_operator_pipeline(4, mt::MebKind::kReduced),
                   contended_workload, std::nullopt});
  // Hybrid-MEB capacity point: S=4 main slots + 2 dynamically shared.
  cases.push_back({"meb_operator_pipeline_s4_hybrid2",
                   meb_operator_pipeline(4, mt::MebKind::kFull), contended_workload,
                   std::size_t{2}});

  {
    netlist::CircuitBuilder b;
    b.source("src") >> b.buffer("m0") >> b.var_latency("vl", 1, 4) >>
        b.buffer("m1") >> b.sink("sink");
    b.then_multithreaded(4, mt::MebKind::kFull);
    cases.push_back({"mt_var_latency", b.build(),
                     [](netlist::Elaboration& e) {
                       auto& src = e.mt_source("src");
                       for (std::size_t t = 0; t < e.threads(); ++t) {
                         src.set_generator(t,
                                           [t](std::uint64_t i) { return 7 * t + i; });
                       }
                       e.mt_sink("sink").set_rate(2, 0.5, 41);
                     },
                     std::nullopt});
  }

  return cases;
}

}  // namespace mte::snaptest
