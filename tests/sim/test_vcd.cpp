#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace mte::sim {
namespace {

class Toggler : public Component {
 public:
  Toggler(Simulator& s, Wire<bool>& out) : Component(s, "tog"), out_(out) {}
  void reset() override { state_ = false; }
  void eval() override { out_.set(state_); }
  void tick() override { state_ = !state_; }

 private:
  Wire<bool>& out_;
  bool state_ = false;
};

TEST(Vcd, HeaderContainsDeclaredSignals) {
  Simulator s;
  Wire<bool> w(s.tracker(), false);
  Toggler t(s, w);
  VcdWriter vcd(s, "dut");
  vcd.add_signal("clk enable", 1, [&] { return w.get() ? 1u : 0u; });
  s.reset();
  s.run(4);
  const std::string text = vcd.render();
  EXPECT_NE(text.find("$scope module dut $end"), std::string::npos);
  EXPECT_NE(text.find("clk_enable"), std::string::npos);  // space sanitized
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
}

TEST(Vcd, RecordsToggles) {
  Simulator s;
  Wire<bool> w(s.tracker(), false);
  Toggler t(s, w);
  VcdWriter vcd(s);
  vcd.add_signal("x", 1, [&] { return w.get() ? 1u : 0u; });
  s.reset();
  s.run(4);
  EXPECT_EQ(vcd.sample_count(), 4u);
  const std::string text = vcd.render();
  // Time markers for each sampled cycle.
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#3"), std::string::npos);
}

TEST(Vcd, MultiBitValuesUseBinaryFormat) {
  Simulator s;
  VcdWriter vcd(s);
  unsigned counter = 0;
  vcd.add_signal("bus", 8, [&] { return counter; });
  s.on_cycle([&](Cycle) { ++counter; });
  // No components: add a dummy so step() works with zero components.
  s.reset();
  s.run(3);
  const std::string text = vcd.render();
  EXPECT_NE(text.find("$var wire 8"), std::string::npos);
  EXPECT_NE(text.find('b'), std::string::npos);
}

TEST(Vcd, WritesFile) {
  Simulator s;
  Wire<bool> w(s.tracker(), false);
  Toggler t(s, w);
  VcdWriter vcd(s);
  vcd.add_signal("x", 1, [&] { return w.get() ? 1u : 0u; });
  s.reset();
  s.run(2);
  const std::string path = testing::TempDir() + "/mte_test.vcd";
  ASSERT_TRUE(vcd.write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, vcd.render());
  std::remove(path.c_str());
}

TEST(Vcd, IdGenerationIsUniqueForManySignals) {
  Simulator s;
  VcdWriter vcd(s);
  for (int i = 0; i < 200; ++i) {
    vcd.add_signal("sig" + std::to_string(i), 1, [] { return 0u; });
  }
  EXPECT_EQ(vcd.signal_count(), 200u);
  const std::string text = vcd.render();
  // All 200 declarations present.
  EXPECT_NE(text.find("sig199"), std::string::npos);
}

}  // namespace
}  // namespace mte::sim
