// Reset-determinism regression tests (both kernels).
//
// Historically Source::reset(), Sink::reset(), MtSource/MtSink's reset
// paths and the var-latency units redrew their gate/latency values from
// the CURRENT RNG stream without restoring it to the configured seed, so
// reset() + rerun diverged from a fresh simulator with the same seeds.
// The components now store the seed at set_rate()/set_latency_range() and
// reseed in reset(); these tests pin that contract: a reset-and-rerun is
// probe-identical to a fresh run, cycle by cycle.
//
// Also pinned here: the explicit draw-consumption policy of
// sim::BernoulliGate — batched draws are stream-identical to per-cycle
// next_bool() draws, rate >= 1.0 consumes no draws, and set_rate()
// restarts the stream at decision 0 from the next clock edge.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "elastic/channel.hpp"
#include "elastic/elastic_buffer.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "elastic/var_latency.hpp"
#include "mt/full_meb.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace mte {
namespace {

class ResetDeterminism : public ::testing::TestWithParam<sim::KernelKind> {};

INSTANTIATE_TEST_SUITE_P(Kernels, ResetDeterminism,
                         ::testing::Values(sim::KernelKind::kNaive,
                                           sim::KernelKind::kEventDriven),
                         [](const auto& info) {
                           return info.param == sim::KernelKind::kNaive
                                      ? "naive"
                                      : "event";
                         });

// --- single-thread rig: rate-gated source/sink + var-latency server ---------

struct StRig {
  explicit StRig(sim::KernelKind kernel) : s(kernel) {
    src.set_generator([](std::uint64_t i) { return i * 3 + 1; });
    src.set_rate(0.6, 41);
    vlu.set_latency_range(1, 4, 17);
    sink.set_rate(0.7, 43);
  }

  /// Per-cycle settled handshake of the sink-side channel.
  std::vector<std::uint32_t> run_trace(sim::Cycle cycles) {
    std::vector<std::uint32_t> trace;
    trace.reserve(cycles);
    s.reset();
    for (sim::Cycle c = 0; c < cycles; ++c) {
      s.settle();
      trace.push_back(static_cast<std::uint32_t>(out.valid.get()) |
                      (static_cast<std::uint32_t>(out.ready.get()) << 1) |
                      (static_cast<std::uint32_t>(out.data.get() & 0xff) << 2));
      s.step();
    }
    return trace;
  }

  sim::Simulator s;
  elastic::Channel<std::uint64_t> a{s, "a"};
  elastic::Channel<std::uint64_t> b{s, "b"};
  elastic::Channel<std::uint64_t> out{s, "out"};
  elastic::Source<std::uint64_t> src{s, "src", a};
  elastic::ElasticBuffer<std::uint64_t> eb{s, "eb", a, b};
  elastic::VariableLatencyUnit<std::uint64_t> vlu{s, "vlu", b, out};
  elastic::Sink<std::uint64_t> sink{s, "sink", out};
};

TEST_P(ResetDeterminism, StResetRerunMatchesFreshRun) {
  constexpr sim::Cycle kCycles = 400;
  StRig fresh(GetParam());
  const auto expected = fresh.run_trace(kCycles);
  const auto received = fresh.sink.received();
  ASSERT_GT(received.size(), 0u);

  StRig twice(GetParam());
  (void)twice.run_trace(kCycles);     // first run
  const auto rerun = twice.run_trace(kCycles);  // reset + rerun
  EXPECT_EQ(rerun, expected);
  EXPECT_EQ(twice.sink.received(), received);
}

// --- multithreaded rig: per-thread rate gates through a full MEB ------------

struct MtRig {
  explicit MtRig(sim::KernelKind kernel) : s(kernel) {
    for (std::size_t t = 0; t < kThreads; ++t) {
      src.set_generator(t, [t](std::uint64_t i) { return i * 10 + t; });
      src.set_rate(t, 0.5 + 0.1 * static_cast<double>(t), 71);
      sink.set_rate(t, 0.8 - 0.1 * static_cast<double>(t), 73);
    }
  }

  /// Per-cycle settled fired-thread of the sink-side channel.
  std::vector<std::size_t> run_trace(sim::Cycle cycles) {
    std::vector<std::size_t> trace;
    trace.reserve(cycles);
    s.reset();
    for (sim::Cycle c = 0; c < cycles; ++c) {
      s.settle();
      trace.push_back(out.fired_thread());
      s.step();
    }
    return trace;
  }

  static constexpr std::size_t kThreads = 4;
  sim::Simulator s;
  mt::MtChannel<std::uint64_t> in{s, "in", kThreads};
  mt::MtChannel<std::uint64_t> out{s, "out", kThreads};
  mt::MtSource<std::uint64_t> src{s, "src", in};
  mt::FullMeb<std::uint64_t> meb{s, "meb", in, out};
  mt::MtSink<std::uint64_t> sink{s, "sink", out};
};

TEST_P(ResetDeterminism, MtResetRerunMatchesFreshRun) {
  constexpr sim::Cycle kCycles = 400;
  MtRig fresh(GetParam());
  const auto expected = fresh.run_trace(kCycles);
  const auto order = fresh.sink.order();
  ASSERT_GT(order.size(), 0u);

  MtRig twice(GetParam());
  (void)twice.run_trace(kCycles);
  const auto rerun = twice.run_trace(kCycles);
  EXPECT_EQ(rerun, expected);
  EXPECT_EQ(twice.sink.order(), order);
}

// --- BernoulliGate draw-consumption policy ----------------------------------

TEST(BernoulliGate, BatchedDrawsMatchPerCycleDraws) {
  // Decision k of a (rate, seed) stream must be EXACTLY the k-th
  // next_bool(rate) of Rng(seed) — batching 64 draws into a word is
  // invisible in the decision sequence (lockstep with the reference).
  for (const double rate : {0.1, 0.5, 0.9}) {
    sim::BernoulliGate gate(12345);
    gate.configure(rate, 12345);
    gate.reset();
    sim::Rng reference(12345);
    for (int k = 0; k < 1000; ++k) {
      ASSERT_EQ(gate.open(), reference.next_bool(rate))
          << "rate=" << rate << " decision " << k;
      gate.advance();
    }
  }
}

TEST(BernoulliGate, ResetReplaysTheStream) {
  sim::BernoulliGate gate(9);
  gate.configure(0.4, 9);
  gate.reset();
  std::vector<bool> first;
  for (int k = 0; k < 200; ++k) {
    first.push_back(gate.open());
    gate.advance();
  }
  gate.reset();
  for (int k = 0; k < 200; ++k) {
    ASSERT_EQ(gate.open(), first[static_cast<std::size_t>(k)]) << "decision " << k;
    gate.advance();
  }
}

TEST(BernoulliGate, FullRateConsumesNoDraws) {
  // rate >= 1.0 short-circuits the RNG entirely, so any number of
  // full-rate cycles leaves a later rate-limited stream exactly where a
  // fresh one starts: re-configuring to (0.5, seed) yields decision 0.
  sim::BernoulliGate gate(5);
  gate.configure(1.0, 5);
  gate.reset();
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(gate.open());
    gate.advance();
  }
  gate.configure(0.5, 5);
  sim::Rng reference(5);
  for (int k = 0; k < 200; ++k) {
    gate.advance();  // first advance after configure loads decision 0
    ASSERT_EQ(gate.open(), reference.next_bool(0.5)) << "decision " << k;
  }
}

TEST_P(ResetDeterminism, MidRunRateChangeRestartsTheGateStream) {
  // The explicit policy for changing a rate mid-run (e.g. 1.0 -> 0.5):
  // set_rate() restarts the stream. The decision already loaded (drawn at
  // the previous clock edge) still gates the next cycle; the edge after
  // that consumes decision 0 of the new (rate, seed) stream. So a source
  // switched at cycle c matches, from cycle c + 1 on, the gate sequence a
  // fresh (0.5, seed) source shows from cycle 0.
  constexpr std::uint64_t kSeed = 99;
  constexpr sim::Cycle kSwitch = 50;
  constexpr sim::Cycle kCompare = 300;

  const auto valid_trace = [](sim::Simulator& s,
                              elastic::Channel<std::uint64_t>& ch,
                              sim::Cycle cycles) {
    std::vector<bool> trace;
    for (sim::Cycle c = 0; c < cycles; ++c) {
      s.settle();
      trace.push_back(ch.valid.get());
      s.step();
    }
    return trace;
  };

  // Reference: rate 0.5 from cycle 0. An endless generator and an
  // always-ready sink make the valid pattern the gate stream itself.
  sim::Simulator sa(GetParam());
  elastic::Channel<std::uint64_t> ca{sa, "c"};
  elastic::Source<std::uint64_t> srca{sa, "src", ca};
  elastic::Sink<std::uint64_t> sinka{sa, "sink", ca};
  srca.set_generator([](std::uint64_t i) { return i; });
  srca.set_rate(0.5, kSeed);
  sa.reset();
  const auto ref = valid_trace(sa, ca, kCompare);

  // Switched: full rate for kSwitch cycles, then 0.5 with the same seed.
  sim::Simulator sb(GetParam());
  elastic::Channel<std::uint64_t> cb{sb, "c"};
  elastic::Source<std::uint64_t> srcb{sb, "src", cb};
  elastic::Sink<std::uint64_t> sinkb{sb, "sink", cb};
  srcb.set_generator([](std::uint64_t i) { return i; });
  sb.reset();
  const auto before = valid_trace(sb, cb, kSwitch);
  for (const bool v : before) ASSERT_TRUE(v);  // rate 1.0: always offering
  srcb.set_rate(0.5, kSeed);
  const auto after = valid_trace(sb, cb, kCompare + 1);
  // The stale full-rate decision still gates the first post-switch cycle.
  EXPECT_TRUE(after[0]);
  // From the next cycle on: decision 0, 1, 2, ... of the (0.5, seed)
  // stream — identical to the reference run's cycles 0, 1, 2, ...
  for (sim::Cycle j = 0; j < kCompare; ++j) {
    ASSERT_EQ(after[j + 1], ref[j]) << "decision " << j;
  }
}

}  // namespace
}  // namespace mte
