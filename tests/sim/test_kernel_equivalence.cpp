// Kernel equivalence: the event-driven worklist kernel must be
// cycle-for-cycle identical to the naive reference kernel — same wire
// values after every settle, same probe statistics, same cycle counts —
// on the repository's representative circuits (fig1-style single-thread
// flows, fig5-style MEB pipelines, fork/join diamonds, branch/merge
// routing, variable-latency units), over thousands of cycles.
#include <gtest/gtest.h>

#include "kernel_lockstep.hpp"

namespace {

using namespace mte;
using kerneltest::LockstepOptions;
using kerneltest::run_lockstep;
using kerneltest::Word;

netlist::Netlist fig1_pipeline() {
  netlist::CircuitBuilder b;
  b.source("src") >> b.buffer("b0") >> b.function("sq", "square") >>
      b.buffer("b1") >> b.sink("out");
  return b.build();
}

TEST(KernelEquivalence, Fig1PipelineFullRate) {
  run_lockstep(fig1_pipeline(), [](netlist::Elaboration& e) {
    e.source("src").set_generator([](std::uint64_t i) { return i; });
  });
}

TEST(KernelEquivalence, Fig1PipelineBackpressured) {
  run_lockstep(
      fig1_pipeline(),
      [](netlist::Elaboration& e) {
        e.source("src").set_generator([](std::uint64_t i) { return i; });
        e.source("src").set_rate(0.8, 7);
        e.sink("out").set_rate(0.6, 11);
      },
      {.cycles = 3000});
}

TEST(KernelEquivalence, ForkJoinDiamond) {
  netlist::CircuitBuilder b;
  b.source("src") >> b.fork("f", 2);
  b.node("f").out(0) >> b.buffer("ba") >> b.function("fa", "inc") >> b.join("j", 2).in(0);
  b.node("f").out(1) >> b.buffer("bb") >> b.buffer("bb2") >> b.node("j").in(1);
  b.node("j") >> b.buffer("bo") >> b.sink("out");
  run_lockstep(
      b.build(),
      [](netlist::Elaboration& e) {
        e.source("src").set_generator([](std::uint64_t i) { return i + 1; });
        e.sink("out").set_rate(0.7, 3);
      },
      {.cycles = 3000});
}

TEST(KernelEquivalence, BranchMergeRouting) {
  // Equal-latency arms and an always-ready sink keep the merge's inputs
  // mutually exclusive (branch serializes; equal delay preserves spacing).
  netlist::CircuitBuilder b;
  b.source("src") >> b.branch("br", "even");
  b.node("br").when_true() >> b.buffer("bt") >> b.merge("mg", 2).in(0);
  b.node("br").when_false() >> b.buffer("bf") >> b.node("mg").in(1);
  b.node("mg") >> b.sink("out");
  run_lockstep(
      b.build(),
      [](netlist::Elaboration& e) {
        e.source("src").set_generator([](std::uint64_t i) { return 3 * i + 1; });
      },
      {.cycles = 2500});
}

TEST(KernelEquivalence, VarLatencySingleThread) {
  netlist::CircuitBuilder b;
  b.source("src") >> b.buffer("b0") >> b.var_latency("vl", 1, 5) >> b.buffer("b1") >>
      b.sink("out");
  run_lockstep(
      b.build(),
      [](netlist::Elaboration& e) {
        e.source("src").set_generator([](std::uint64_t i) { return i; });
        e.sink("out").set_rate(0.85, 5);
      },
      {.cycles = 3000});
}

netlist::Netlist fig5_pipeline(std::size_t threads, mt::MebKind kind) {
  netlist::CircuitBuilder b;
  b.source("src") >> b.buffer("meb0") >> b.buffer("meb1") >> b.sink("sink");
  b.then_multithreaded(threads, kind);
  return b.build();
}

/// The paper's Fig. 5 scenario: thread 1 stalls at the sink and is later
/// released while thread 0 keeps flowing.
void fig5_workload(netlist::Elaboration& e) {
  auto& src = e.mt_source("src");
  auto& sink = e.mt_sink("sink");
  for (std::size_t t = 0; t < e.threads(); ++t) {
    src.set_generator(t, [t](std::uint64_t i) { return 1000 * t + i; });
  }
  sink.add_stall_window(1, 4, 26);
}

TEST(KernelEquivalence, Fig5FullMeb) {
  run_lockstep(fig5_pipeline(2, mt::MebKind::kFull), fig5_workload,
               {.cycles = 2000});
}

TEST(KernelEquivalence, Fig5ReducedMeb) {
  run_lockstep(fig5_pipeline(2, mt::MebKind::kReduced), fig5_workload,
               {.cycles = 2000});
}

netlist::Netlist meb_operator_pipeline(std::size_t threads, mt::MebKind kind) {
  netlist::CircuitBuilder b;
  auto stage = b.source("src") >> b.buffer("m0") >> b.function("fu0", "inc");
  for (int i = 1; i < 4; ++i) {
    stage = stage >> b.buffer("m" + std::to_string(i)) >>
            b.function("fu" + std::to_string(i), "double");
  }
  stage >> b.sink("sink");
  b.then_multithreaded(threads, kind);
  return b.build();
}

void contended_workload(netlist::Elaboration& e) {
  auto& src = e.mt_source("src");
  auto& sink = e.mt_sink("sink");
  for (std::size_t t = 0; t < e.threads(); ++t) {
    src.set_generator(t, [t](std::uint64_t i) { return (t << 32) + i; });
    src.set_rate(t, 0.9, 17 + t);
    sink.set_rate(t, 0.7, 29 + t);
  }
}

TEST(KernelEquivalence, MebOperatorPipelineS4Full) {
  run_lockstep(meb_operator_pipeline(4, mt::MebKind::kFull), contended_workload,
               {.cycles = 3000});
}

TEST(KernelEquivalence, MebOperatorPipelineS4Reduced) {
  run_lockstep(meb_operator_pipeline(4, mt::MebKind::kReduced), contended_workload,
               {.cycles = 3000});
}

TEST(KernelEquivalence, MebOperatorPipelineS8Full) {
  run_lockstep(meb_operator_pipeline(8, mt::MebKind::kFull), contended_workload,
               {.cycles = 2000});
}

TEST(KernelEquivalence, MtVarLatencyPipeline) {
  netlist::CircuitBuilder b;
  b.source("src") >> b.buffer("m0") >> b.var_latency("vl", 1, 4) >> b.buffer("m1") >>
      b.sink("sink");
  b.then_multithreaded(4, mt::MebKind::kFull);
  run_lockstep(
      b.build(),
      [](netlist::Elaboration& e) {
        auto& src = e.mt_source("src");
        for (std::size_t t = 0; t < e.threads(); ++t) {
          src.set_generator(t, [t](std::uint64_t i) { return 7 * t + i; });
        }
        e.mt_sink("sink").set_rate(2, 0.5, 41);
      },
      {.cycles = 3000});
}

TEST(KernelEquivalence, SingleThreadMtDesignPoint) {
  // The S=1 multithreaded design point (MEBs with one thread).
  run_lockstep(fig5_pipeline(1, mt::MebKind::kReduced),
               [](netlist::Elaboration& e) {
                 e.mt_source("src").set_generator(0, [](std::uint64_t i) { return i; });
                 e.mt_sink("sink").set_rate(0, 0.75, 13);
               },
               {.cycles = 2500});
}

TEST(KernelEquivalence, ProbesDisabledStillEquivalent) {
  run_lockstep(fig5_pipeline(2, mt::MebKind::kFull), fig5_workload,
               {.cycles = 1500, .channel_probes = false});
}

}  // namespace
