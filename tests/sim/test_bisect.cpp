// Snapshot-bisection mode of the lockstep harness: with a snapshot
// interval set, a kernel divergence must be pinned to the window since
// the last in-sync snapshot pair and reproduced by replaying only that
// window — never from cycle 0.
//
// A real divergence would be a kernel bug, so these tests synthesize one:
// the workload closure inspects the simulator's kernel and stalls the
// sink only under the event-driven kernel, which makes the two runs
// legally disagree at a known cycle.
#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "kernel_lockstep.hpp"
#include "snapshot_circuits.hpp"

namespace {

using namespace mte;
using kerneltest::BisectReport;
using kerneltest::LockstepOptions;
using kerneltest::run_lockstep;

netlist::Netlist bisect_net() { return snaptest::fig1_pipeline(); }

// Diverges at cycle 300 under the event kernel only.
void divergent_configure(netlist::Elaboration& e) {
  e.source("src").set_generator([](std::uint64_t i) { return i; });
  if (e.simulator().kernel() == sim::KernelKind::kEventDriven) {
    e.sink("out").add_stall_window(300, 310);
  }
}

TEST(LockstepBisect, DivergenceIsPinnedToSnapshotWindow) {
  BisectReport rep;
  LockstepOptions opt;
  opt.cycles = 400;
  opt.snapshot_interval = 100;
  opt.bisect = &rep;

  // The synthetic divergence must fail the lockstep run...
  EXPECT_NONFATAL_FAILURE(
      {
        const auto net = bisect_net();
        run_lockstep(net, divergent_configure, opt);
      },
      "bisected to window");

  // ...and the report must pin it to the 100-cycle window around 300,
  // with the replay starting from the cycle-300 snapshot, not cycle 0.
  ASSERT_TRUE(rep.triggered);
  EXPECT_GT(rep.window_begin, 0u) << "replay must not start from cycle 0";
  EXPECT_EQ(rep.window_begin, 300u);
  EXPECT_GT(rep.window_end, rep.window_begin);
  EXPECT_LE(rep.window_end - rep.window_begin, opt.snapshot_interval);
  EXPECT_TRUE(rep.replayed)
      << "restoring the snapshot pair must reproduce the divergence in-window";
  EXPECT_FALSE(rep.ref_snapshot.empty());
  EXPECT_FALSE(rep.dut_snapshot.empty());
  EXPECT_FALSE(rep.message.empty());
}

TEST(LockstepBisect, ArtifactsDumpedWhenDirSet) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "mte_bisect_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ::setenv("MTE_BISECT_DIR", dir.string().c_str(), 1);

  BisectReport rep;
  LockstepOptions opt;
  opt.cycles = 400;
  opt.snapshot_interval = 100;
  opt.bisect = &rep;
  EXPECT_NONFATAL_FAILURE(
      {
        const auto net = bisect_net();
        run_lockstep(net, divergent_configure, opt);
      },
      "bisected to window");
  ::unsetenv("MTE_BISECT_DIR");

  ASSERT_TRUE(rep.triggered);
  const std::string base = "bisect_" + std::to_string(rep.window_begin) + "_" +
                           std::to_string(rep.window_end);
  EXPECT_TRUE(fs::exists(dir / (base + "_ref.snap")));
  EXPECT_TRUE(fs::exists(dir / (base + "_dut.snap")));
  ASSERT_TRUE(fs::exists(dir / (base + ".txt")));
  std::ifstream report(dir / (base + ".txt"));
  std::string text((std::istreambuf_iterator<char>(report)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("divergence window"), std::string::npos);
  fs::remove_all(dir);
}

TEST(LockstepBisect, CleanRunLeavesReportUntriggered) {
  BisectReport rep;
  LockstepOptions opt;
  opt.cycles = 400;
  opt.snapshot_interval = 100;
  opt.bisect = &rep;
  const auto net = bisect_net();
  EXPECT_TRUE(run_lockstep(
      net,
      [](netlist::Elaboration& e) {
        e.source("src").set_generator([](std::uint64_t i) { return i; });
      },
      opt));
  EXPECT_FALSE(rep.triggered);
}

}  // namespace
