// Lockstep kernel-equivalence harness: elaborates the same netlist under
// the naive reference kernel and the event-driven worklist kernel, drives
// both with an identical (deterministic) workload, and asserts after every
// cycle that all channel wires carry identical values — then, at the end
// of the run, that cycle counters and per-channel probe statistics match.
//
// Shared by test_kernel_equivalence.cpp (curated circuits) and
// test_kernel_fuzz.cpp (random netlists).
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/builder.hpp"
#include "sim/protocol_monitor.hpp"

namespace mte::kerneltest {

using netlist::Elaboration;
using netlist::Netlist;
using Word = netlist::Word;

/// Filled in by run_lockstep when snapshot-bisection is enabled and a wire
/// divergence fires: the divergence is pinned to the window since the last
/// in-sync snapshot pair, and replayed from that pair (never from cycle 0)
/// to confirm the snapshots alone reproduce it.
struct BisectReport {
  bool triggered = false;
  /// Cycle of the last snapshot at which both kernels agreed.
  sim::Cycle window_begin = 0;
  /// Cycle at which the wire mismatch was observed; the offending window
  /// is (window_begin, window_end].
  sim::Cycle window_end = 0;
  /// True when restoring the snapshot pair into fresh elaborations and
  /// re-stepping reproduced the divergence inside the window.
  bool replayed = false;
  /// Snapshot bytes of both simulators at window_begin.
  std::string ref_snapshot;
  std::string dut_snapshot;
  /// Wire mismatch description from the original run.
  std::string message;
};

struct LockstepOptions {
  sim::Cycle cycles = 2000;
  bool channel_probes = true;
  /// Skip (instead of fail) circuits whose settle diverges under either
  /// kernel — used by the fuzzer, whose random structures cannot rule out
  /// oscillating combinational cycles entirely.
  bool allow_divergent = false;
  /// Arbitration policy for both elaborations. Netlists with M-Joins need
  /// ArbiterKind::kOblivious to stay inside the equivalence contract:
  /// ready-aware arbitration against the M-Join's cross-input ready
  /// coupling yields multiple combinational fixed points, so the two
  /// kernels can legally settle to different ones.
  mt::ArbiterKind arbiter = mt::ArbiterKind::kRoundRobin;
  /// When nonzero, both simulators are snapshotted every snapshot_interval
  /// cycles; a wire divergence is then bisected to the cycles since the
  /// last snapshot and replayed from it, so a failure deep into a long run
  /// never needs a cycle-0 replay. Failure messages carry the window.
  sim::Cycle snapshot_interval = 0;
  /// Receives the bisection result (window, snapshots, replay verdict).
  /// Artifacts are additionally written to $MTE_BISECT_DIR when set.
  BisectReport* bisect = nullptr;
  /// Attach a ProtocolMonitor to both elaborations and fail the run on any
  /// recorded violation — a lint-clean circuit must honour the SELF
  /// contract under both kernels. The fuzz suite turns this on via
  /// MTE_FUZZ_MONITORS=1.
  bool monitors = false;
};

/// Per-cycle wire comparison across every channel of the two elaborations.
inline ::testing::AssertionResult channels_equal(
    Elaboration& ref, Elaboration& dut, const std::vector<std::string>& names) {
  for (const auto& name : names) {
    if (ref.is_multithreaded()) {
      auto& a = ref.mt_channel(name);
      auto& b = dut.mt_channel(name);
      if (a.data.get() != b.data.get()) {
        return ::testing::AssertionFailure()
               << "channel '" << name << "' data: naive=" << a.data.get()
               << " event=" << b.data.get();
      }
      for (std::size_t t = 0; t < a.threads(); ++t) {
        if (a.valid(t).get() != b.valid(t).get()) {
          return ::testing::AssertionFailure()
                 << "channel '" << name << "' valid(" << t
                 << "): naive=" << a.valid(t).get() << " event=" << b.valid(t).get();
        }
        if (a.ready(t).get() != b.ready(t).get()) {
          return ::testing::AssertionFailure()
                 << "channel '" << name << "' ready(" << t
                 << "): naive=" << a.ready(t).get() << " event=" << b.ready(t).get();
        }
      }
    } else {
      auto& a = ref.channel(name);
      auto& b = dut.channel(name);
      if (a.valid.get() != b.valid.get() || a.ready.get() != b.ready.get() ||
          a.data.get() != b.data.get()) {
        return ::testing::AssertionFailure()
               << "channel '" << name << "': naive (v=" << a.valid.get()
               << " r=" << a.ready.get() << " d=" << a.data.get()
               << ") event (v=" << b.valid.get() << " r=" << b.ready.get()
               << " d=" << b.data.get() << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// End-of-run probe statistics comparison (transfer counts per thread,
/// observed cycles, backpressure wait statistics).
inline ::testing::AssertionResult probes_equal(
    Elaboration& ref, Elaboration& dut, const std::vector<std::string>& names) {
  for (const auto& name : names) {
    auto& a = ref.probe(name);
    auto& b = dut.probe(name);
    if (a.cycles() != b.cycles()) {
      return ::testing::AssertionFailure()
             << "probe '" << name << "' cycles: naive=" << a.cycles()
             << " event=" << b.cycles();
    }
    for (std::size_t t = 0; t < a.threads(); ++t) {
      if (a.count(t) != b.count(t)) {
        return ::testing::AssertionFailure()
               << "probe '" << name << "' count(" << t << "): naive=" << a.count(t)
               << " event=" << b.count(t);
      }
    }
    if (a.mean_wait() != b.mean_wait()) {
      return ::testing::AssertionFailure()
             << "probe '" << name << "' mean_wait: naive=" << a.mean_wait()
             << " event=" << b.mean_wait();
    }
    if (a.throughput() != b.throughput()) {
      return ::testing::AssertionFailure()
             << "probe '" << name << "' throughput: naive=" << a.throughput()
             << " event=" << b.throughput();
    }
  }
  return ::testing::AssertionSuccess();
}

namespace detail {

inline std::unique_ptr<Elaboration> bisect_elab(
    const Netlist& net, const netlist::FunctionRegistry& registry,
    const netlist::ComponentFactory& factory, const LockstepOptions& opt,
    sim::KernelKind kernel, const std::function<void(Elaboration&)>& configure,
    const std::string& snapshot) {
  netlist::ElaborationOptions eopt;
  eopt.channel_probes = opt.channel_probes;
  eopt.kernel = kernel;
  eopt.arbiter = opt.arbiter;
  auto e = std::make_unique<Elaboration>(net, registry, factory, eopt);
  configure(*e);
  e->simulator().reset();
  std::istringstream is(snapshot);
  e->simulator().restore(is);
  return e;
}

/// Replays only the offending window (rep.window_begin, rep.window_end]
/// from the saved snapshot pair in fresh elaborations. Returns true when
/// the wire divergence reproduces inside the window.
inline bool replay_bisect_window(const Netlist& net,
                                 const netlist::FunctionRegistry& registry,
                                 const netlist::ComponentFactory& factory,
                                 const LockstepOptions& opt,
                                 const std::function<void(Elaboration&)>& configure,
                                 const std::vector<std::string>& names,
                                 const BisectReport& rep) {
  auto ref = bisect_elab(net, registry, factory, opt, sim::KernelKind::kNaive,
                         configure, rep.ref_snapshot);
  auto dut = bisect_elab(net, registry, factory, opt, sim::KernelKind::kEventDriven,
                         configure, rep.dut_snapshot);
  for (sim::Cycle c = rep.window_begin; c < rep.window_end; ++c) {
    ref->simulator().step();
    dut->simulator().step();
    if (!channels_equal(*ref, *dut, names)) return true;
  }
  return false;
}

/// Writes the snapshot pair and a plain-text report to $MTE_BISECT_DIR so
/// CI can upload the artifacts of a tripped fuzz case.
inline void dump_bisect_artifacts(const BisectReport& rep) {
  const char* dir = std::getenv("MTE_BISECT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base = std::string(dir) + "/bisect_" +
                           std::to_string(rep.window_begin) + "_" +
                           std::to_string(rep.window_end);
  std::ofstream(base + "_ref.snap", std::ios::binary) << rep.ref_snapshot;
  std::ofstream(base + "_dut.snap", std::ios::binary) << rep.dut_snapshot;
  std::ofstream report(base + ".txt");
  report << "kernel divergence window: (" << rep.window_begin << ", "
         << rep.window_end << "]\n"
         << "replayed from snapshot: " << (rep.replayed ? "yes" : "NO") << '\n'
         << rep.message << '\n';
}

}  // namespace detail

/// Elaborates `net` under both kernels, applies `configure` to each (it
/// must be deterministic — both elaborations need the identical workload),
/// then runs the lockstep comparison for opt.cycles cycles.
///
/// Returns false when either kernel raised CombinationalLoopError and
/// opt.allow_divergent is set: such a circuit has an oscillating
/// combinational cycle (it is outside the equivalence contract — its fixed
/// point depends on evaluation order), so the case is skipped rather than
/// failed. With allow_divergent unset the error fails the test.
inline bool run_lockstep(const Netlist& net,
                         const std::function<void(Elaboration&)>& configure,
                         const LockstepOptions& opt = {}) {
  const auto registry = netlist::FunctionRegistry::with_defaults();
  const auto factory = netlist::ComponentFactory::defaults();
  // Declared before the elaborations so the simulators' attachment
  // pointers never outlive the monitors.
  sim::ProtocolMonitor ref_monitor;
  sim::ProtocolMonitor dut_monitor;
  netlist::ElaborationOptions ref_opt;
  ref_opt.channel_probes = opt.channel_probes;
  ref_opt.kernel = sim::KernelKind::kNaive;
  ref_opt.arbiter = opt.arbiter;
  netlist::ElaborationOptions dut_opt = ref_opt;
  dut_opt.kernel = sim::KernelKind::kEventDriven;
  auto ref = std::make_unique<Elaboration>(net, registry, factory, ref_opt);
  auto dut = std::make_unique<Elaboration>(net, registry, factory, dut_opt);
  EXPECT_EQ(ref->simulator().kernel(), sim::KernelKind::kNaive);
  EXPECT_EQ(dut->simulator().kernel(), sim::KernelKind::kEventDriven);

  configure(*ref);
  configure(*dut);
  if (opt.monitors) {
    ref->attach_monitor(ref_monitor);
    dut->attach_monitor(dut_monitor);
  }
  ref->simulator().reset();
  dut->simulator().reset();

  const auto names = ref->channel_names();
  EXPECT_EQ(names, dut->channel_names());
  EXPECT_FALSE(names.empty());
  if (::testing::Test::HasFailure()) return false;

  // Latest in-sync snapshot pair for bisection (cycle 0 = post-reset).
  BisectReport local_bisect;
  BisectReport* bisect = opt.bisect != nullptr ? opt.bisect : &local_bisect;
  sim::Cycle snap_cycle = 0;

  for (sim::Cycle c = 0; c < opt.cycles; ++c) {
    if (opt.snapshot_interval != 0 && c % opt.snapshot_interval == 0) {
      std::ostringstream ros, dos;
      ref->simulator().save(ros);
      dut->simulator().save(dos);
      bisect->ref_snapshot = ros.str();
      bisect->dut_snapshot = dos.str();
      snap_cycle = c;
    }
    const char* diverged = nullptr;
    try {
      ref->simulator().step();
    } catch (const sim::CombinationalLoopError&) {
      diverged = "naive";
    }
    if (diverged == nullptr) {
      try {
        dut->simulator().step();
      } catch (const sim::CombinationalLoopError&) {
        diverged = "event-driven";
      }
    }
    if (diverged != nullptr) {
      if (opt.allow_divergent) return false;  // skip: outside the contract
      ADD_FAILURE() << diverged << " kernel raised CombinationalLoopError at cycle "
                    << c;
      return false;
    }
    const auto wires = channels_equal(*ref, *dut, names);
    if (!wires) {
      if (opt.snapshot_interval != 0) {
        bisect->triggered = true;
        bisect->window_begin = snap_cycle;
        bisect->window_end = c + 1;
        bisect->message = wires.message();
        bisect->replayed = detail::replay_bisect_window(net, registry, factory, opt,
                                                        configure, names, *bisect);
        detail::dump_bisect_artifacts(*bisect);
        ADD_FAILURE() << wires.message() << " at cycle " << c
                      << "; bisected to window (" << bisect->window_begin << ", "
                      << bisect->window_end << "] of "
                      << (bisect->window_end - bisect->window_begin)
                      << " cycles, replay from snapshot "
                      << (bisect->replayed ? "reproduces" : "DOES NOT reproduce")
                      << " the divergence";
      } else {
        ADD_FAILURE() << wires.message() << " at cycle " << c;
      }
      return false;
    }
  }
  EXPECT_EQ(ref->simulator().now(), dut->simulator().now());
  if (opt.monitors) {
    if (!ref_monitor.violations().empty()) {
      ADD_FAILURE() << "naive kernel protocol violations:\n" << ref_monitor.report();
      return false;
    }
    if (!dut_monitor.violations().empty()) {
      ADD_FAILURE() << "event kernel protocol violations:\n" << dut_monitor.report();
      return false;
    }
  }
  if (opt.channel_probes) {
    const auto stats = probes_equal(*ref, *dut, names);
    if (!stats) {
      ADD_FAILURE() << stats.message() << " after " << opt.cycles << " cycles";
      return false;
    }
  }
  return !::testing::Test::HasFailure();
}

}  // namespace mte::kerneltest
