#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/kernels.hpp"

namespace mte::cpu {
namespace {

TEST(Assembler, BasicProgram) {
  const Program p = assemble(R"(
    addi r1, r0, 5
    add r2, r1, r1
    halt
  )");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(decode(p.words[0]), (Instr{Opcode::kAddi, 1, 0, 0, 5}));
  EXPECT_EQ(decode(p.words[1]), (Instr{Opcode::kAdd, 2, 1, 1, 0}));
  EXPECT_EQ(decode(p.words[2]).op, Opcode::kHalt);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
    ; full line comment
    # another comment style

    nop            ; trailing comment
    halt
  )");
  EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const Program p = assemble(R"(
top:
    beq r0, r0, bottom
    nop
bottom:
    beq r0, r0, top
    halt
  )");
  // beq to bottom: offset = 2 - 0 - 1 = 1.
  EXPECT_EQ(decode(p.words[0]).imm, 1);
  // beq to top: offset = 0 - 2 - 1 = -3.
  EXPECT_EQ(decode(p.words[2]).imm, -3);
  EXPECT_EQ(p.label("top"), 0u);
  EXPECT_EQ(p.label("bottom"), 2u);
}

TEST(Assembler, MemoryOperandsWithOffsets) {
  const Program p = assemble(R"(
    lw r4, 8(r2)
    sw r5, -4(r3)
    lw r6, (r7)
  )");
  EXPECT_EQ(decode(p.words[0]), (Instr{Opcode::kLw, 4, 2, 0, 8}));
  const Instr sw = decode(p.words[1]);
  EXPECT_EQ(sw.op, Opcode::kSw);
  EXPECT_EQ(sw.rs1, 3);
  EXPECT_EQ(sw.rs2, 5);
  EXPECT_EQ(sw.imm, -4);
  EXPECT_EQ(decode(p.words[2]).imm, 0);  // empty offset is zero
}

TEST(Assembler, HexAndNegativeImmediates) {
  const Program p = assemble(R"(
    addi r1, r0, 0x1F
    addi r2, r0, -100
    lui r3, 0xABCD
  )");
  EXPECT_EQ(decode(p.words[0]).imm, 31);
  EXPECT_EQ(decode(p.words[1]).imm, -100);
  EXPECT_EQ(decode(p.words[2]).imm, 0xABCD);
}

TEST(Assembler, JalTakesLabelOrNumber) {
  const Program p = assemble(R"(
    jal r31, func
    halt
func:
    jr r31
  )");
  EXPECT_EQ(decode(p.words[0]).imm, 2);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    (void)assemble("nop\nbogus r1, r2\n");
    FAIL() << "expected AssemblerError";
  } catch (const AssemblerError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, RejectsBadRegister) {
  EXPECT_THROW((void)assemble("addi r99, r0, 1"), AssemblerError);
  EXPECT_THROW((void)assemble("addi x1, r0, 1"), AssemblerError);
}

TEST(Assembler, RejectsOutOfRangeImmediate) {
  EXPECT_THROW((void)assemble("addi r1, r0, 5000"), AssemblerError);
  EXPECT_THROW((void)assemble("addi r1, r0, -5000"), AssemblerError);
  EXPECT_THROW((void)assemble("lui r1, 0x10000"), AssemblerError);
}

TEST(Assembler, RejectsWrongOperandCount) {
  EXPECT_THROW((void)assemble("add r1, r2"), AssemblerError);
  EXPECT_THROW((void)assemble("halt r1"), AssemblerError);
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_THROW((void)assemble("a:\nnop\na:\nnop"), AssemblerError);
}

TEST(Assembler, RejectsUnknownLabel) {
  EXPECT_THROW((void)assemble("beq r0, r0, nowhere"), AssemblerError);
}

TEST(Disassembler, RoundTripThroughText) {
  const Program p = kernels::sieve(50);
  // Disassemble every word and re-assemble; branch offsets become numeric
  // immediates, so compare decoded instruction streams.
  for (std::uint32_t w : p.words) {
    const std::string text = disassemble(w);
    const Instr original = decode(w);
    if (is_branch(original.op)) continue;  // textual branch targets are relative
    const Program again = assemble(text + "\n");
    ASSERT_EQ(again.size(), 1u) << text;
    EXPECT_EQ(decode(again.words[0]), original) << text;
  }
}

TEST(Disassembler, ProgramListingHasLabels) {
  const Program p = assemble("start:\n  nop\n  beq r0, r0, start\n");
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("start:"), std::string::npos);
  EXPECT_NE(text.find("nop"), std::string::npos);
}

}  // namespace
}  // namespace mte::cpu
