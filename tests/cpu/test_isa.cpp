#include <gtest/gtest.h>

#include "cpu/isa.hpp"

namespace mte::cpu {
namespace {

TEST(Isa, EncodeDecodeRoundTripRType) {
  const Instr i{Opcode::kAdd, 3, 7, 12, 0};
  EXPECT_EQ(decode(encode(i)), i);
}

TEST(Isa, EncodeDecodeRoundTripITypeNegativeImm) {
  const Instr i{Opcode::kAddi, 1, 2, 0, -17};
  EXPECT_EQ(decode(encode(i)), i);
}

TEST(Isa, EncodeDecodeRoundTripSType) {
  const Instr i{Opcode::kSw, 0, 4, 9, -1024};
  EXPECT_EQ(decode(encode(i)), i);
}

TEST(Isa, EncodeDecodeRoundTripUType) {
  const Instr i{Opcode::kLui, 31, 0, 0, 0xFFFF};
  EXPECT_EQ(decode(encode(i)), i);
}

TEST(Isa, EncodeDecodeRoundTripJType) {
  const Instr i{Opcode::kJal, 31, 0, 0, (1 << 21) - 1};
  EXPECT_EQ(decode(encode(i)), i);
}

TEST(Isa, RoundTripAllOpcodesExhaustive) {
  for (unsigned op = 0; op < static_cast<unsigned>(Opcode::kCount_); ++op) {
    Instr i;
    i.op = static_cast<Opcode>(op);
    switch (format_of(i.op)) {
      case Format::kR: i.rd = 1; i.rs1 = 2; i.rs2 = 3; break;
      case Format::kI: i.rd = 4; i.rs1 = 5; i.imm = -7; break;
      case Format::kS: i.rs1 = 6; i.rs2 = 7; i.imm = 100; break;
      case Format::kU: i.rd = 8; i.imm = 0x1234; break;
      case Format::kJ: i.rd = 9; i.imm = 4242; break;
    }
    EXPECT_EQ(decode(encode(i)), i) << "opcode " << op;
  }
}

TEST(Isa, UnknownOpcodeDecodesAsNop) {
  const std::uint32_t bogus = 63u << 26;
  EXPECT_EQ(decode(bogus).op, Opcode::kNop);
}

TEST(Isa, FormatClassification) {
  EXPECT_EQ(format_of(Opcode::kMul), Format::kR);
  EXPECT_EQ(format_of(Opcode::kLw), Format::kI);
  EXPECT_EQ(format_of(Opcode::kSw), Format::kS);
  EXPECT_EQ(format_of(Opcode::kBeq), Format::kS);
  EXPECT_EQ(format_of(Opcode::kLui), Format::kU);
  EXPECT_EQ(format_of(Opcode::kJal), Format::kJ);
  EXPECT_EQ(format_of(Opcode::kJr), Format::kI);
}

TEST(Isa, RegisterUsagePredicates) {
  EXPECT_TRUE(writes_rd(Opcode::kAdd));
  EXPECT_TRUE(writes_rd(Opcode::kLw));
  EXPECT_TRUE(writes_rd(Opcode::kJal));
  EXPECT_FALSE(writes_rd(Opcode::kSw));
  EXPECT_FALSE(writes_rd(Opcode::kBeq));
  EXPECT_FALSE(writes_rd(Opcode::kHalt));
  EXPECT_TRUE(reads_rs1(Opcode::kJr));
  EXPECT_FALSE(reads_rs1(Opcode::kLui));
  EXPECT_TRUE(reads_rs2(Opcode::kSw));
  EXPECT_FALSE(reads_rs2(Opcode::kAddi));
}

TEST(Isa, MnemonicRoundTrip) {
  for (unsigned op = 0; op < static_cast<unsigned>(Opcode::kCount_); ++op) {
    const auto o = static_cast<Opcode>(op);
    const auto back = opcode_from(mnemonic(o));
    ASSERT_TRUE(back.has_value()) << mnemonic(o);
    EXPECT_EQ(*back, o);
  }
  EXPECT_FALSE(opcode_from("bogus").has_value());
}

}  // namespace
}  // namespace mte::cpu
