// The elastic pipeline is verified against the golden-model interpreter:
// identical final registers, memory and retired counts for every kernel,
// every MEB flavour and randomized variable-latency configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "cpu/kernels.hpp"
#include "cpu/processor.hpp"

namespace mte::cpu {
namespace {

ProcessorConfig base_config(std::size_t threads, mt::MebKind kind) {
  ProcessorConfig cfg;
  cfg.threads = threads;
  cfg.meb_kind = kind;
  return cfg;
}

void expect_matches_interp(Processor& proc, const std::vector<Program>& programs,
                           const std::vector<std::vector<std::uint32_t>>& dmem_init) {
  const auto cycles = proc.run();
  ASSERT_GT(cycles, 0u) << "pipeline timed out";
  for (std::size_t t = 0; t < programs.size(); ++t) {
    if (programs[t].words.empty()) continue;
    Interpreter interp(programs[t], proc.config().dmem_words);
    for (std::size_t a = 0; a < dmem_init[t].size(); ++a) {
      interp.mem().write(static_cast<std::uint32_t>(a), dmem_init[t][a]);
    }
    interp.run();
    for (unsigned r = 0; r < kNumRegs; ++r) {
      ASSERT_EQ(proc.reg(t, r), interp.reg(r)) << "thread " << t << " r" << r;
    }
    ASSERT_EQ(proc.retired(t), interp.retired()) << "thread " << t;
    for (std::uint32_t a = 0; a < 200; ++a) {
      ASSERT_EQ(proc.dmem_read(t, a), interp.mem().read(a))
          << "thread " << t << " dmem[" << a << "]";
    }
  }
}

TEST(Processor, SingleThreadFibonacci) {
  for (mt::MebKind kind : {mt::MebKind::kFull, mt::MebKind::kReduced}) {
    Processor proc(base_config(1, kind));
    proc.load_program(0, kernels::fibonacci(15));
    ASSERT_GT(proc.run(), 0u);
    EXPECT_EQ(proc.reg(0, 1), 610u) << to_string(kind);
  }
}

TEST(Processor, EightThreadsDifferentKernels) {
  for (mt::MebKind kind : {mt::MebKind::kFull, mt::MebKind::kReduced}) {
    Processor proc(base_config(8, kind));
    std::vector<Program> programs = {
        kernels::fibonacci(12),    kernels::gcd(48, 36),
        kernels::array_sum(8),     kernels::memcpy_words(6, 0, 64),
        kernels::dot_product(4, 0, 32), kernels::sieve(30),
        kernels::call_leaf(5, 6),  kernels::fibonacci(7),
    };
    std::vector<std::vector<std::uint32_t>> dmem(8);
    dmem[2] = {5, 6, 7, 8, 9, 10, 11, 12};
    dmem[3] = {1, 2, 3, 4, 5, 6};
    dmem[4] = {9, 8, 7, 6};
    for (std::size_t t = 0; t < 8; ++t) {
      proc.load_program(t, programs[t]);
      for (std::size_t a = 0; a < dmem[t].size(); ++a) {
        proc.set_dmem(t, static_cast<std::uint32_t>(a), dmem[t][a]);
      }
    }
    // Fill rs2-space for dot product (second vector at 32).
    for (int i = 0; i < 4; ++i) proc.set_dmem(4, 32 + i, 3 * (i + 1));
    Processor* p = &proc;
    // Re-seed interp dmem to match.
    std::vector<std::vector<std::uint32_t>> dmem_full(8);
    for (std::size_t t = 0; t < 8; ++t) {
      dmem_full[t].resize(64, 0);
      for (std::size_t a = 0; a < dmem[t].size(); ++a) dmem_full[t][a] = dmem[t][a];
    }
    for (int i = 0; i < 4; ++i) dmem_full[4][32 + i] = 3 * (i + 1);
    expect_matches_interp(*p, programs, dmem_full);
  }
}

TEST(Processor, ThreadsWithoutProgramsStayHalted) {
  Processor proc(base_config(4, mt::MebKind::kReduced));
  proc.load_program(1, kernels::fibonacci(5));
  ASSERT_GT(proc.run(), 0u);
  EXPECT_EQ(proc.retired(0), 0u);
  EXPECT_EQ(proc.reg(1, 1), 5u);
}

TEST(Processor, MissingHaltThrows) {
  Processor proc(base_config(1, mt::MebKind::kReduced));
  proc.load_program(0, assemble("nop\nnop\n"));
  EXPECT_THROW((void)proc.run(), sim::SimulationError);
}

TEST(Processor, MultiCycleMultiplySemantics) {
  ProcessorConfig cfg = base_config(2, mt::MebKind::kReduced);
  cfg.mul_latency = 5;
  Processor proc(cfg);
  proc.load_program(0, assemble(R"(
    addi r2, r0, 7
    addi r3, r0, 9
    mul r1, r2, r3
    mul r1, r1, r2
    halt
  )"));
  proc.load_program(1, kernels::fibonacci(9));
  ASSERT_GT(proc.run(), 0u);
  EXPECT_EQ(proc.reg(0, 1), 7u * 9u * 7u);
  EXPECT_EQ(proc.reg(1, 1), 34u);
}

TEST(Processor, CacheMissesAreSlowerButCorrect) {
  ProcessorConfig cfg = base_config(1, mt::MebKind::kReduced);
  cfg.dmem_miss_latency = 20;
  cfg.dcache_lines = 1;
  cfg.dcache_line_words = 1;  // every new address misses
  Processor thrash(cfg);
  thrash.load_program(0, kernels::array_sum(16));
  for (int i = 0; i < 16; ++i) thrash.set_dmem(0, i, i);
  const auto slow_cycles = thrash.run();
  ASSERT_GT(slow_cycles, 0u);
  EXPECT_EQ(thrash.reg(0, 1), 120u);

  ProcessorConfig fast_cfg = base_config(1, mt::MebKind::kReduced);
  fast_cfg.dcache_lines = 64;
  fast_cfg.dcache_line_words = 8;
  Processor fast(fast_cfg);
  fast.load_program(0, kernels::array_sum(16));
  for (int i = 0; i < 16; ++i) fast.set_dmem(0, i, i);
  const auto fast_cycles = fast.run();
  EXPECT_EQ(fast.reg(0, 1), 120u);
  EXPECT_LT(fast_cycles, slow_cycles);
}

TEST(Processor, VariableFetchLatencyStillCorrect) {
  ProcessorConfig cfg = base_config(4, mt::MebKind::kReduced);
  cfg.imem_latency_lo = 1;
  cfg.imem_latency_hi = 4;
  cfg.seed = 99;
  Processor proc(cfg);
  std::vector<Program> programs = {kernels::fibonacci(10), kernels::gcd(100, 36),
                                   kernels::call_leaf(1, 2), kernels::sieve(20)};
  for (std::size_t t = 0; t < 4; ++t) proc.load_program(t, programs[t]);
  expect_matches_interp(proc, programs,
                        std::vector<std::vector<std::uint32_t>>(4));
}

TEST(Processor, MultithreadingHidesLatency) {
  // IPC with 8 threads must be much higher than with 1 thread on the
  // same latency-heavy kernel (the paper's utilization argument).
  double ipc1 = 0, ipc8 = 0;
  for (std::size_t threads : {1u, 8u}) {
    ProcessorConfig cfg = base_config(threads, mt::MebKind::kReduced);
    cfg.mul_latency = 4;
    cfg.dmem_miss_latency = 8;
    Processor proc(cfg);
    for (std::size_t t = 0; t < threads; ++t) {
      proc.load_program(t, kernels::dot_product(16, 0, 100));
      for (int i = 0; i < 16; ++i) {
        proc.set_dmem(t, i, i + 1);
        proc.set_dmem(t, 100 + i, i + 2);
      }
    }
    ASSERT_GT(proc.run(), 0u);
    (threads == 1 ? ipc1 : ipc8) = proc.ipc();
  }
  EXPECT_GT(ipc8, 2.5 * ipc1);
}

TEST(Processor, FullAndReducedSameResultsAndSimilarCycles) {
  sim::Cycle cycles[2];
  for (mt::MebKind kind : {mt::MebKind::kFull, mt::MebKind::kReduced}) {
    Processor proc(base_config(8, kind));
    for (std::size_t t = 0; t < 8; ++t) {
      proc.load_program(t, kernels::fibonacci(10 + static_cast<int>(t)));
    }
    const auto n = proc.run();
    ASSERT_GT(n, 0u);
    cycles[kind == mt::MebKind::kFull ? 0 : 1] = n;
    for (std::size_t t = 0; t < 8; ++t) {
      Interpreter interp(kernels::fibonacci(10 + static_cast<int>(t)), 64);
      interp.run();
      EXPECT_EQ(proc.reg(t, 1), interp.reg(1));
    }
  }
  // Paper: the reduced MEB does not sacrifice performance.
  const double ratio = static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

using RandomParams = std::tuple<int /*threads*/, int /*kind*/, int /*seed*/>;

class ProcessorRandomSweep : public testing::TestWithParam<RandomParams> {};

TEST_P(ProcessorRandomSweep, AgreesWithInterpreter) {
  const int threads = std::get<0>(GetParam());
  const auto kind =
      std::get<1>(GetParam()) == 0 ? mt::MebKind::kFull : mt::MebKind::kReduced;
  const int seed = std::get<2>(GetParam());
  ProcessorConfig cfg = base_config(threads, kind);
  cfg.imem_latency_lo = 1;
  cfg.imem_latency_hi = 3;
  cfg.mul_latency = 3;
  cfg.seed = static_cast<std::uint64_t>(seed) * 1013 + 7;
  Processor proc(cfg);
  std::vector<Program> programs;
  std::vector<std::vector<std::uint32_t>> dmem(threads);
  for (int t = 0; t < threads; ++t) {
    switch ((t + seed) % 5) {
      case 0: programs.push_back(kernels::fibonacci(8 + t)); break;
      case 1: programs.push_back(kernels::gcd(90 + t, 12)); break;
      case 2:
        programs.push_back(kernels::array_sum(6));
        dmem[t] = {1u, 2u, 3u, 4u, 5u, 6u};
        break;
      case 3:
        programs.push_back(kernels::dot_product(3, 0, 10));
        dmem[t] = {2u, 3u, 4u, 0u, 0u, 0u, 0u, 0u, 0u, 0u, 5u, 6u, 7u};
        break;
      default: programs.push_back(kernels::sieve(25)); break;
    }
    proc.load_program(t, programs.back());
    for (std::size_t a = 0; a < dmem[t].size(); ++a) {
      proc.set_dmem(t, static_cast<std::uint32_t>(a), dmem[t][a]);
    }
  }
  expect_matches_interp(proc, programs, dmem);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProcessorRandomSweep,
                         testing::Combine(testing::Values(1, 2, 4, 8),
                                          testing::Values(0, 1),
                                          testing::Values(0, 1, 2)),
                         [](const testing::TestParamInfo<RandomParams>& info) {
                           return "t" + std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) == 0 ? "_full" : "_reduced") +
                                  "_s" + std::to_string(std::get<2>(info.param));
                         });

}  // namespace
}  // namespace mte::cpu
