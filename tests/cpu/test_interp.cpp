#include <gtest/gtest.h>

#include "cpu/interp.hpp"
#include "cpu/kernels.hpp"

namespace mte::cpu {
namespace {

std::uint32_t run_and_get_r1(const Program& p, std::uint64_t max_steps = 1u << 20) {
  Interpreter interp(p, 1024);
  interp.run(max_steps);
  EXPECT_TRUE(interp.halted());
  return interp.reg(1);
}

TEST(Execute, AluSemantics) {
  const Instr add{Opcode::kAdd, 1, 2, 3, 0};
  EXPECT_EQ(execute(add, 0, 7, 5).value, 12u);
  const Instr sub{Opcode::kSub, 1, 2, 3, 0};
  EXPECT_EQ(execute(sub, 0, 3, 5).value, 0xFFFFFFFEu);  // wraparound
  const Instr slt{Opcode::kSlt, 1, 2, 3, 0};
  EXPECT_EQ(execute(slt, 0, 0xFFFFFFFFu, 0).value, 1u);  // signed compare
  const Instr sll{Opcode::kSll, 1, 2, 3, 0};
  EXPECT_EQ(execute(sll, 0, 1, 33).value, 2u);  // shift amount masked
  const Instr mul{Opcode::kMul, 1, 2, 3, 0};
  EXPECT_EQ(execute(mul, 0, 100000, 100000).value, 100000u * 100000u);
}

TEST(Execute, BranchSemantics) {
  const Instr beq{Opcode::kBeq, 0, 1, 2, 5};
  EXPECT_EQ(execute(beq, 10, 4, 4).next_pc, 16u);
  EXPECT_EQ(execute(beq, 10, 4, 5).next_pc, 11u);
  const Instr bne{Opcode::kBne, 0, 1, 2, -3};
  EXPECT_EQ(execute(bne, 10, 4, 5).next_pc, 8u);
  EXPECT_EQ(execute(bne, 10, 4, 4).next_pc, 11u);
}

TEST(Execute, JumpSemantics) {
  const Instr jal{Opcode::kJal, 31, 0, 0, 100};
  const auto r = execute(jal, 10, 0, 0);
  EXPECT_EQ(r.next_pc, 100u);
  EXPECT_EQ(r.value, 11u);
  const Instr jr{Opcode::kJr, 0, 5, 0, 0};
  EXPECT_EQ(execute(jr, 10, 77, 0).next_pc, 77u);
}

TEST(Execute, LuiShifts16) {
  const Instr lui{Opcode::kLui, 1, 0, 0, 0xABCD};
  EXPECT_EQ(execute(lui, 0, 0, 0).value, 0xABCD0000u);
}

TEST(Interpreter, R0StaysZero) {
  const Program p = assemble("addi r0, r0, 5\nadd r1, r0, r0\nhalt\n");
  Interpreter interp(p, 16);
  interp.run();
  EXPECT_EQ(interp.reg(0), 0u);
  EXPECT_EQ(interp.reg(1), 0u);
}

TEST(Interpreter, Fibonacci) {
  EXPECT_EQ(run_and_get_r1(kernels::fibonacci(0)), 0u);
  EXPECT_EQ(run_and_get_r1(kernels::fibonacci(1)), 1u);
  EXPECT_EQ(run_and_get_r1(kernels::fibonacci(10)), 55u);
  EXPECT_EQ(run_and_get_r1(kernels::fibonacci(20)), 6765u);
}

TEST(Interpreter, ArraySum) {
  const Program p = kernels::array_sum(8);
  Interpreter interp(p, 64);
  std::uint32_t expect = 0;
  for (int i = 0; i < 8; ++i) {
    interp.mem().write(i, 10 + i);
    expect += 10 + i;
  }
  interp.run();
  EXPECT_EQ(interp.reg(1), expect);
  EXPECT_EQ(interp.mem().read(8), expect);  // stored after the array
}

TEST(Interpreter, MemcpyWords) {
  const Program p = kernels::memcpy_words(5, 0, 100);
  Interpreter interp(p, 256);
  for (int i = 0; i < 5; ++i) interp.mem().write(i, 111 * (i + 1));
  interp.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(interp.mem().read(100 + i), 111u * (i + 1));
}

TEST(Interpreter, DotProduct) {
  const Program p = kernels::dot_product(4, 0, 50);
  Interpreter interp(p, 128);
  std::uint32_t expect = 0;
  for (int i = 0; i < 4; ++i) {
    interp.mem().write(i, i + 1);
    interp.mem().write(50 + i, 2 * (i + 1));
    expect += (i + 1) * 2 * (i + 1);
  }
  interp.run();
  EXPECT_EQ(interp.reg(1), expect);
}

TEST(Interpreter, SieveCountsPrimes) {
  const Program p = kernels::sieve(50);
  EXPECT_EQ(run_and_get_r1(p), 15u);  // primes below 50
}

TEST(Interpreter, Gcd) {
  EXPECT_EQ(run_and_get_r1(kernels::gcd(48, 36)), 12u);
  EXPECT_EQ(run_and_get_r1(kernels::gcd(17, 5)), 1u);
  EXPECT_EQ(run_and_get_r1(kernels::gcd(9, 9)), 9u);
}

TEST(Interpreter, CallLeaf) {
  EXPECT_EQ(run_and_get_r1(kernels::call_leaf(3, 4)), 14u);
}

TEST(Interpreter, OutOfRangePcThrows) {
  const Program p = assemble("nop\n");  // falls off the end
  Interpreter interp(p, 16);
  interp.step();
  EXPECT_THROW(interp.step(), sim::SimulationError);
}

TEST(Interpreter, MemoryOutOfRangeThrows) {
  const Program p = assemble("lw r1, 1000(r0)\nhalt\n");
  Interpreter interp(p, 16);
  EXPECT_THROW(interp.run(), sim::SimulationError);
}

TEST(Interpreter, RetiredCounts) {
  const Program p = assemble("nop\nnop\nhalt\n");
  Interpreter interp(p, 16);
  interp.run();
  EXPECT_EQ(interp.retired(), 3u);
}

TEST(CacheModel, HitAfterMiss) {
  CacheModel c(4, 4, 1, 10);
  EXPECT_EQ(c.access(0), 10u);  // cold miss
  EXPECT_EQ(c.access(1), 1u);   // same line
  EXPECT_EQ(c.access(3), 1u);
  EXPECT_EQ(c.access(4), 10u);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheModel, ConflictEviction) {
  CacheModel c(2, 1, 1, 10);
  EXPECT_EQ(c.access(0), 10u);
  EXPECT_EQ(c.access(2), 10u);  // maps to the same index, evicts
  EXPECT_EQ(c.access(0), 10u);  // miss again
}

TEST(DataMemory, BoundsChecked) {
  DataMemory m(4);
  m.write(3, 7);
  EXPECT_EQ(m.read(3), 7u);
  EXPECT_THROW(m.read(4), sim::SimulationError);
  EXPECT_THROW(m.write(4, 0), sim::SimulationError);
}

}  // namespace
}  // namespace mte::cpu
