#include <gtest/gtest.h>

#include "elastic/eb_control.hpp"

namespace mte::elastic {
namespace {

TEST(EbControl, StartsEmpty) {
  EbControl c;
  EXPECT_EQ(c.state(), EbState::kEmpty);
  EXPECT_TRUE(c.can_accept());
  EXPECT_FALSE(c.has_data());
  EXPECT_EQ(c.occupancy(), 0);
}

TEST(EbControl, EmptyToHalfOnWrite) {
  EbControl c;
  const auto d = c.decide(/*valid_in=*/true, /*ready_in=*/false);
  EXPECT_TRUE(d.in_fire);
  EXPECT_FALSE(d.out_fire);
  EXPECT_TRUE(d.load_head_from_in);
  EXPECT_FALSE(d.load_aux_from_in);
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kHalf);
}

TEST(EbControl, HalfToFullOnWriteWithoutRead) {
  EbControl c;
  c.commit(c.decide(true, false));  // -> HALF
  const auto d = c.decide(true, false);
  EXPECT_TRUE(d.in_fire);
  EXPECT_TRUE(d.load_aux_from_in);
  EXPECT_FALSE(d.load_head_from_in);
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kFull);
  EXPECT_FALSE(c.can_accept());
}

TEST(EbControl, FullRejectsInput) {
  EbControl c;
  c.commit(c.decide(true, false));
  c.commit(c.decide(true, false));  // -> FULL
  const auto d = c.decide(true, false);
  EXPECT_FALSE(d.in_fire);  // not accepted: buffer full
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kFull);
}

TEST(EbControl, FullToHalfOnReadShiftsAux) {
  EbControl c;
  c.commit(c.decide(true, false));
  c.commit(c.decide(true, false));  // -> FULL
  const auto d = c.decide(false, true);
  EXPECT_TRUE(d.out_fire);
  EXPECT_TRUE(d.shift_aux_to_head);
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kHalf);
}

TEST(EbControl, HalfToEmptyOnRead) {
  EbControl c;
  c.commit(c.decide(true, false));
  const auto d = c.decide(false, true);
  EXPECT_TRUE(d.out_fire);
  EXPECT_FALSE(d.shift_aux_to_head);
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kEmpty);
}

TEST(EbControl, SimultaneousReadWriteInHalfStaysHalf) {
  EbControl c;
  c.commit(c.decide(true, false));  // -> HALF
  const auto d = c.decide(true, true);
  EXPECT_TRUE(d.in_fire);
  EXPECT_TRUE(d.out_fire);
  EXPECT_TRUE(d.load_head_from_in);  // head freed and refilled this cycle
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kHalf);
}

TEST(EbControl, SimultaneousReadWriteInFullStaysFull) {
  EbControl c;
  c.commit(c.decide(true, false));
  c.commit(c.decide(true, false));  // -> FULL: cannot accept
  const auto d = c.decide(true, true);
  EXPECT_FALSE(d.in_fire);  // ready was low
  EXPECT_TRUE(d.out_fire);
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kHalf);
}

TEST(EbControl, ReadFromEmptyDoesNothing) {
  EbControl c;
  const auto d = c.decide(false, true);
  EXPECT_FALSE(d.out_fire);
  c.commit(d);
  EXPECT_EQ(c.state(), EbState::kEmpty);
}

TEST(EbControl, ResetReturnsToEmpty) {
  EbControl c;
  c.commit(c.decide(true, false));
  c.reset();
  EXPECT_EQ(c.state(), EbState::kEmpty);
}

// Exhaustive check: occupancy arithmetic is consistent for every
// (state, valid, ready) combination.
TEST(EbControl, ExhaustiveOccupancyConservation) {
  for (int occ0 = 0; occ0 <= 2; ++occ0) {
    for (int v = 0; v <= 1; ++v) {
      for (int r = 0; r <= 1; ++r) {
        EbControl c;
        for (int k = 0; k < occ0; ++k) c.commit(c.decide(true, false));
        ASSERT_EQ(c.occupancy(), occ0);
        const auto d = c.decide(v != 0, r != 0);
        c.commit(d);
        const int expected = occ0 + (d.in_fire ? 1 : 0) - (d.out_fire ? 1 : 0);
        EXPECT_EQ(c.occupancy(), expected)
            << "occ0=" << occ0 << " v=" << v << " r=" << r;
        EXPECT_GE(c.occupancy(), 0);
        EXPECT_LE(c.occupancy(), 2);
      }
    }
  }
}

}  // namespace
}  // namespace mte::elastic
