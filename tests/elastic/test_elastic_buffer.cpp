#include <gtest/gtest.h>

#include <numeric>

#include "elastic/channel.hpp"
#include "elastic/elastic_buffer.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "sim/simulator.hpp"

namespace mte::elastic {
namespace {

std::vector<std::uint64_t> iota_tokens(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

struct EbRig {
  sim::Simulator s;
  Channel<std::uint64_t> in{s, "in"};
  Channel<std::uint64_t> out{s, "out"};
  Source<std::uint64_t> src{s, "src", in};
  ElasticBuffer<std::uint64_t> eb{s, "eb", in, out};
  Sink<std::uint64_t> sink{s, "sink", out};
};

TEST(ElasticBuffer, FullThroughputWhenUncontended) {
  EbRig rig;
  rig.src.set_tokens(iota_tokens(50));
  rig.s.reset();
  rig.s.run(60);
  // 1-cycle forward latency, then one token per cycle.
  EXPECT_EQ(rig.sink.count(), 50u);
  EXPECT_EQ(rig.sink.received(), iota_tokens(50));
}

TEST(ElasticBuffer, OneTokenPerCycleSteadyState) {
  EbRig rig;
  rig.src.set_generator([](std::uint64_t i) { return i; });
  rig.s.reset();
  rig.s.run(100);
  // After the 1-cycle fill, exactly one token must arrive per cycle.
  EXPECT_EQ(rig.sink.count(), 99u);
}

TEST(ElasticBuffer, HoldsTwoTokensUnderStall) {
  EbRig rig;
  rig.src.set_tokens(iota_tokens(10));
  rig.sink.add_stall_window(0, 20);
  rig.s.reset();
  rig.s.run(20);
  EXPECT_EQ(rig.sink.count(), 0u);
  EXPECT_EQ(rig.eb.occupancy(), 2);  // EMPTY -> HALF -> FULL, then backpressure
  EXPECT_EQ(rig.eb.state(), EbState::kFull);
  rig.s.run(20);
  EXPECT_EQ(rig.sink.count(), 10u);
  EXPECT_EQ(rig.sink.received(), iota_tokens(10));
}

TEST(ElasticBuffer, NoLossNoReorderUnderRandomRates) {
  EbRig rig;
  rig.src.set_tokens(iota_tokens(200));
  rig.src.set_rate(0.7, 101);
  rig.sink.set_rate(0.6, 202);
  rig.s.reset();
  rig.s.run(1000);
  EXPECT_EQ(rig.sink.count(), 200u);
  EXPECT_EQ(rig.sink.received(), iota_tokens(200));
}

TEST(ElasticBuffer, BackpressurePropagatesUpstream) {
  EbRig rig;
  rig.src.set_generator([](std::uint64_t i) { return i; });
  rig.sink.add_stall_window(0, 50);
  rig.s.reset();
  rig.s.run(50);
  // Source delivered exactly the buffer capacity.
  EXPECT_EQ(rig.src.sent(), 2u);
}

TEST(ElasticBuffer, ChainOfBuffersPreservesOrder) {
  sim::Simulator s;
  Channel<std::uint64_t> c0{s, "c0"}, c1{s, "c1"}, c2{s, "c2"}, c3{s, "c3"};
  Source<std::uint64_t> src{s, "src", c0};
  ElasticBuffer<std::uint64_t> e0{s, "e0", c0, c1};
  ElasticBuffer<std::uint64_t> e1{s, "e1", c1, c2};
  ElasticBuffer<std::uint64_t> e2{s, "e2", c2, c3};
  Sink<std::uint64_t> sink{s, "sink", c3};
  src.set_tokens(iota_tokens(100));
  src.set_rate(0.5, 7);
  sink.set_rate(0.5, 8);
  s.reset();
  s.run(1000);
  EXPECT_EQ(sink.received(), iota_tokens(100));
}

TEST(ElasticBuffer, DataStableWhileValidUnconsumed) {
  EbRig rig;
  rig.src.set_tokens({42, 43});
  rig.sink.add_stall_window(0, 10);
  rig.s.reset();
  rig.s.run(5);
  rig.s.settle();
  EXPECT_TRUE(rig.out.valid.get());
  EXPECT_EQ(rig.out.data.get(), 42u);  // head-of-queue stays presented
  rig.s.run(3);
  rig.s.settle();
  EXPECT_EQ(rig.out.data.get(), 42u);
}

TEST(HalfBuffer, AlternatesAtHalfThroughput) {
  sim::Simulator s;
  Channel<std::uint64_t> in{s, "in"}, out{s, "out"};
  Source<std::uint64_t> src{s, "src", in};
  HalfBuffer<std::uint64_t> hb{s, "hb", in, out};
  Sink<std::uint64_t> sink{s, "sink", out};
  src.set_generator([](std::uint64_t i) { return i; });
  s.reset();
  s.run(100);
  // Capacity-1 buffer with registered ready alternates accept/emit.
  EXPECT_NEAR(static_cast<double>(sink.count()), 50.0, 2.0);
}

TEST(HalfBuffer, PreservesOrder) {
  sim::Simulator s;
  Channel<std::uint64_t> in{s, "in"}, out{s, "out"};
  Source<std::uint64_t> src{s, "src", in};
  HalfBuffer<std::uint64_t> hb{s, "hb", in, out};
  Sink<std::uint64_t> sink{s, "sink", out};
  src.set_tokens(iota_tokens(30));
  sink.set_rate(0.4, 5);
  s.reset();
  s.run(500);
  EXPECT_EQ(sink.received(), iota_tokens(30));
}

}  // namespace
}  // namespace mte::elastic
