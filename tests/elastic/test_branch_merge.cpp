#include <gtest/gtest.h>

#include <numeric>

#include "elastic/branch.hpp"
#include "elastic/channel.hpp"
#include "elastic/elastic_buffer.hpp"
#include "elastic/function_unit.hpp"
#include "elastic/merge.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "sim/simulator.hpp"

namespace mte::elastic {
namespace {

std::vector<std::uint64_t> iota_tokens(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

TEST(BranchControl, SteersByCondition) {
  auto o = BranchControl::compute(true, true, true, true, true);
  EXPECT_TRUE(o.valid_true);
  EXPECT_FALSE(o.valid_false);
  EXPECT_TRUE(o.ready_data);
  EXPECT_TRUE(o.ready_cond);

  o = BranchControl::compute(true, true, false, true, true);
  EXPECT_FALSE(o.valid_true);
  EXPECT_TRUE(o.valid_false);
}

TEST(BranchControl, WaitsForBothInputs) {
  auto o = BranchControl::compute(true, false, true, true, true);
  EXPECT_FALSE(o.valid_true);
  EXPECT_FALSE(o.valid_false);
  EXPECT_FALSE(o.ready_data);  // condition missing: do not consume data
  o = BranchControl::compute(false, true, true, true, true);
  EXPECT_FALSE(o.ready_cond);  // data missing: do not consume condition
}

TEST(BranchControl, BlockedSelectedOutputBlocksBothInputs) {
  const auto o = BranchControl::compute(true, true, true, /*ready_true=*/false,
                                        /*ready_false=*/true);
  EXPECT_TRUE(o.valid_true);
  EXPECT_FALSE(o.ready_data);
  EXPECT_FALSE(o.ready_cond);
}

struct BranchRig {
  sim::Simulator s;
  Channel<std::uint64_t> data{s, "data"};
  Channel<bool> cond{s, "cond"};
  Channel<std::uint64_t> t{s, "t"}, f{s, "f"};
  Source<std::uint64_t> src{s, "src", data};
  Source<bool> csrc{s, "csrc", cond};
  Branch<std::uint64_t> branch{s, "branch", data, cond, t, f};
  Sink<std::uint64_t> st{s, "st", t};
  Sink<std::uint64_t> sf{s, "sf", f};
};

TEST(Branch, PartitionsStreamByCondition) {
  BranchRig rig;
  rig.src.set_tokens(iota_tokens(20));
  std::vector<bool> conds;
  for (int i = 1; i <= 20; ++i) conds.push_back(i % 3 == 0);
  rig.csrc.set_tokens(conds);
  rig.s.reset();
  rig.s.run(60);
  std::vector<std::uint64_t> expect_t, expect_f;
  for (std::uint64_t i = 1; i <= 20; ++i) (i % 3 == 0 ? expect_t : expect_f).push_back(i);
  EXPECT_EQ(rig.st.received(), expect_t);
  EXPECT_EQ(rig.sf.received(), expect_f);
}

TEST(Branch, BackpressureOnOnePathStallsStream) {
  BranchRig rig;
  rig.src.set_tokens(iota_tokens(10));
  std::vector<bool> conds(10, true);
  conds[4] = false;  // token 5 goes to the false path
  rig.csrc.set_tokens(conds);
  rig.st.add_stall_window(0, 30);  // true path blocked
  rig.s.reset();
  rig.s.run(30);
  EXPECT_EQ(rig.st.count(), 0u);
  EXPECT_EQ(rig.sf.count(), 0u);  // token 5 is stuck behind tokens 1-4
  rig.s.run(30);
  EXPECT_EQ(rig.st.count(), 9u);
  EXPECT_EQ(rig.sf.count(), 1u);
}

TEST(Merge, ForwardsExclusiveStreams) {
  sim::Simulator s;
  Channel<std::uint64_t> a{s, "a"}, b{s, "b"}, out{s, "out"};
  // Build exclusivity with a branch upstream.
  Channel<std::uint64_t> data{s, "data"};
  Channel<bool> cond{s, "cond"};
  Source<std::uint64_t> src{s, "src", data};
  Source<bool> csrc{s, "csrc", cond};
  Branch<std::uint64_t> branch{s, "branch", data, cond, a, b};
  Merge<std::uint64_t> merge{s, "merge", {&a, &b}, out};
  Sink<std::uint64_t> sink{s, "sink", out};
  src.set_tokens(iota_tokens(20));
  std::vector<bool> conds;
  for (int i = 1; i <= 20; ++i) conds.push_back(i % 2 == 0);
  csrc.set_tokens(conds);
  s.reset();
  s.run(60);
  // Branch+merge round trip preserves the stream order.
  EXPECT_EQ(sink.received(), iota_tokens(20));
}

TEST(Merge, ThrowsOnSimultaneousValids) {
  sim::Simulator s;
  Channel<std::uint64_t> a{s, "a"}, b{s, "b"}, out{s, "out"};
  Source<std::uint64_t> sa{s, "sa", a}, sb{s, "sb", b};
  Merge<std::uint64_t> merge{s, "merge", {&a, &b}, out};
  Sink<std::uint64_t> sink{s, "sink", out};
  sa.set_tokens({1});
  sb.set_tokens({2});
  s.reset();
  EXPECT_THROW(s.run(5), sim::ProtocolError);
}

TEST(ArbMerge, InterleavesWithoutLoss) {
  sim::Simulator s;
  Channel<std::uint64_t> a{s, "a"}, b{s, "b"}, out{s, "out"};
  Source<std::uint64_t> sa{s, "sa", a}, sb{s, "sb", b};
  ArbMerge<std::uint64_t> merge{s, "merge", {&a, &b}, out};
  Sink<std::uint64_t> sink{s, "sink", out};
  sa.set_tokens({1, 2, 3, 4});
  sb.set_tokens({101, 102, 103, 104});
  s.reset();
  s.run(30);
  EXPECT_EQ(sink.count(), 8u);
  // Per-stream order is preserved even though streams interleave.
  std::vector<std::uint64_t> a_seen, b_seen;
  for (auto v : sink.received()) (v < 100 ? a_seen : b_seen).push_back(v);
  EXPECT_EQ(a_seen, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(b_seen, (std::vector<std::uint64_t>{101, 102, 103, 104}));
}

TEST(ArbMerge, RoundRobinFairUnderSaturation) {
  sim::Simulator s;
  Channel<std::uint64_t> a{s, "a"}, b{s, "b"}, out{s, "out"};
  Source<std::uint64_t> sa{s, "sa", a}, sb{s, "sb", b};
  ArbMerge<std::uint64_t> merge{s, "merge", {&a, &b}, out};
  Sink<std::uint64_t> sink{s, "sink", out};
  sa.set_generator([](std::uint64_t i) { return i * 2; });        // even
  sb.set_generator([](std::uint64_t i) { return i * 2 + 1; });    // odd
  s.reset();
  s.run(101);
  std::size_t a_count = 0;
  for (auto v : sink.received()) a_count += (v % 2 == 0) ? 1 : 0;
  const double share = static_cast<double>(a_count) / sink.count();
  EXPECT_NEAR(share, 0.5, 0.05);
}

TEST(FunctionUnit, MapsDataThrough) {
  sim::Simulator s;
  Channel<std::uint64_t> in{s, "in"}, mid{s, "mid"}, out{s, "out"};
  Source<std::uint64_t> src{s, "src", in};
  FunctionUnit<std::uint64_t, std::uint64_t> fu{
      s, "fu", in, mid, [](const std::uint64_t& x) { return x * x; }};
  ElasticBuffer<std::uint64_t> eb{s, "eb", mid, out};
  Sink<std::uint64_t> sink{s, "sink", out};
  src.set_tokens(iota_tokens(10));
  s.reset();
  s.run(20);
  ASSERT_EQ(sink.count(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.received()[i], (i + 1) * (i + 1));
  }
}

}  // namespace
}  // namespace mte::elastic
