#include <gtest/gtest.h>

#include <numeric>

#include "elastic/channel.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "elastic/var_latency.hpp"
#include "sim/simulator.hpp"

namespace mte::elastic {
namespace {

std::vector<std::uint64_t> iota_tokens(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

struct VlRig {
  sim::Simulator s;
  Channel<std::uint64_t> in{s, "in"}, out{s, "out"};
  Source<std::uint64_t> src{s, "src", in};
  VariableLatencyUnit<std::uint64_t> vl{s, "vl", in, out};
  Sink<std::uint64_t> sink{s, "sink", out};
};

TEST(VariableLatency, FixedLatencyOneActsLikeRegister) {
  VlRig rig;
  rig.vl.set_fixed_latency(1);
  rig.src.set_tokens(iota_tokens(10));
  rig.s.reset();
  rig.s.run(40);
  EXPECT_EQ(rig.sink.received(), iota_tokens(10));
}

TEST(VariableLatency, LatencyLObservedExactly) {
  for (unsigned latency : {1u, 2u, 3u, 5u, 8u}) {
    VlRig rig;
    rig.vl.set_fixed_latency(latency);
    rig.src.set_tokens({42});
    rig.s.reset();
    // After `latency` cycles the token must be visible, not before.
    rig.s.run(latency);
    rig.s.settle();
    EXPECT_TRUE(rig.out.valid.get()) << "latency=" << latency;
    EXPECT_EQ(rig.sink.count(), 0u);

    VlRig rig2;
    rig2.vl.set_fixed_latency(latency);
    rig2.src.set_tokens({42});
    rig2.s.reset();
    rig2.s.run(latency);
    if (latency > 1) {
      // One cycle earlier the unit must still be busy.
      VlRig rig3;
      rig3.vl.set_fixed_latency(latency);
      rig3.src.set_tokens({42});
      rig3.s.reset();
      rig3.s.run(latency - 1);
      rig3.s.settle();
      EXPECT_FALSE(rig3.out.valid.get()) << "latency=" << latency;
    }
  }
}

TEST(VariableLatency, AppliesFunction) {
  VlRig rig;
  rig.vl.set_fixed_latency(2);
  rig.vl.set_function([](const std::uint64_t& x) { return x + 100; });
  rig.src.set_tokens(iota_tokens(5));
  rig.s.reset();
  rig.s.run(50);
  ASSERT_EQ(rig.sink.count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(rig.sink.received()[i], i + 101);
}

TEST(VariableLatency, RandomLatencyPreservesOrderAndCount) {
  VlRig rig;
  rig.vl.set_latency_range(1, 7, 99);
  rig.src.set_tokens(iota_tokens(50));
  rig.s.reset();
  rig.s.run(1000);
  EXPECT_EQ(rig.sink.received(), iota_tokens(50));
}

TEST(VariableLatency, BackpressureHoldsResult) {
  VlRig rig;
  rig.vl.set_fixed_latency(2);
  rig.src.set_tokens({5, 6});
  rig.sink.add_stall_window(0, 20);
  rig.s.reset();
  rig.s.run(20);
  rig.s.settle();
  EXPECT_TRUE(rig.out.valid.get());
  EXPECT_EQ(rig.out.data.get(), 5u);
  EXPECT_EQ(rig.src.sent(), 1u);  // unit occupied: second token not accepted
  rig.s.run(20);
  EXPECT_EQ(rig.sink.count(), 2u);
}

TEST(VariableLatency, DataDependentLatency) {
  VlRig rig;
  rig.vl.set_latency_fn([](const std::uint64_t& x) { return x % 2 == 0 ? 1u : 4u; });
  rig.src.set_tokens({2, 3, 4});
  rig.s.reset();
  rig.s.run(100);
  EXPECT_EQ(rig.sink.received(), (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(rig.vl.accepted(), 3u);
}

TEST(VariableLatency, ThroughputMatchesMeanLatency) {
  VlRig rig;
  rig.vl.set_fixed_latency(4);
  rig.src.set_generator([](std::uint64_t i) { return i; });
  rig.s.reset();
  rig.s.run(400);
  // One token per (latency + 1) cycles: accept edge + 4 busy/done cycles.
  const double rate = static_cast<double>(rig.sink.count()) / 400.0;
  EXPECT_NEAR(rate, 1.0 / 5.0, 0.02);
}

}  // namespace
}  // namespace mte::elastic
