#include <gtest/gtest.h>

#include <numeric>

#include "elastic/channel.hpp"
#include "elastic/elastic_buffer.hpp"
#include "elastic/fork.hpp"
#include "elastic/join.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "sim/simulator.hpp"

namespace mte::elastic {
namespace {

std::vector<std::uint64_t> iota_tokens(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

TEST(ForkControl, DeliversToAllBeforeAck) {
  ForkControl c(2);
  // Output 0 ready, output 1 not: token goes to 0, no ack upstream.
  EXPECT_TRUE(c.valid_out(true, 0));
  EXPECT_TRUE(c.valid_out(true, 1));
  EXPECT_FALSE(c.ready_out({true, false}));
  c.commit(true, {true, false});
  // Output 0 already served: valid only towards 1 now.
  EXPECT_FALSE(c.valid_out(true, 0));
  EXPECT_TRUE(c.valid_out(true, 1));
  // Now output 1 becomes ready: ack and re-arm.
  EXPECT_TRUE(c.ready_out({false, true}));
  c.commit(true, {false, true});
  EXPECT_TRUE(c.pending(0));
  EXPECT_TRUE(c.pending(1));
}

TEST(ForkControl, SingleCycleDeliveryWhenAllReady) {
  ForkControl c(3);
  EXPECT_TRUE(c.ready_out({true, true, true}));
  c.commit(true, {true, true, true});
  EXPECT_TRUE(c.pending(0));  // re-armed immediately
}

TEST(ForkControl, NoCommitWithoutValid) {
  ForkControl c(2);
  c.commit(false, {true, true});
  EXPECT_TRUE(c.pending(0));
  EXPECT_TRUE(c.pending(1));
}

struct ForkRig {
  sim::Simulator s;
  Channel<std::uint64_t> in{s, "in"}, a{s, "a"}, b{s, "b"};
  Source<std::uint64_t> src{s, "src", in};
  Fork<std::uint64_t> fork{s, "fork", in, {&a, &b}};
  Sink<std::uint64_t> sa{s, "sa", a};
  Sink<std::uint64_t> sb{s, "sb", b};
};

TEST(Fork, BothSinksReceiveEveryToken) {
  ForkRig rig;
  rig.src.set_tokens(iota_tokens(40));
  rig.s.reset();
  rig.s.run(60);
  EXPECT_EQ(rig.sa.received(), iota_tokens(40));
  EXPECT_EQ(rig.sb.received(), iota_tokens(40));
}

TEST(Fork, SlowBranchThrottlesButDoesNotDrop) {
  ForkRig rig;
  rig.src.set_tokens(iota_tokens(40));
  rig.sb.set_rate(0.3, 17);
  rig.s.reset();
  rig.s.run(500);
  EXPECT_EQ(rig.sa.received(), iota_tokens(40));
  EXPECT_EQ(rig.sb.received(), iota_tokens(40));
}

TEST(Fork, EagerDeliveryToFastBranchWhileSlowBlocks) {
  ForkRig rig;
  rig.src.set_tokens({7});
  rig.sb.add_stall_window(0, 10);
  rig.s.reset();
  rig.s.run(5);
  EXPECT_EQ(rig.sa.count(), 1u);  // fast branch got it early (eager fork)
  EXPECT_EQ(rig.sb.count(), 0u);
  rig.s.run(10);
  EXPECT_EQ(rig.sb.count(), 1u);
  EXPECT_EQ(rig.src.sent(), 1u);  // consumed exactly once
}

struct JoinRig {
  sim::Simulator s;
  Channel<std::uint64_t> a{s, "a"}, b{s, "b"}, out{s, "out"};
  Source<std::uint64_t> sa{s, "sa", a};
  Source<std::uint64_t> sb{s, "sb", b};
  Join2<std::uint64_t, std::uint64_t, std::uint64_t> join{
      s, "join", a, b, out,
      [](const std::uint64_t& x, const std::uint64_t& y) { return x + 1000 * y; }};
  Sink<std::uint64_t> sink{s, "sink", out};
};

TEST(Join, PairsTokensInOrder) {
  JoinRig rig;
  rig.sa.set_tokens(iota_tokens(20));
  rig.sb.set_tokens(iota_tokens(20));
  rig.s.reset();
  rig.s.run(50);
  ASSERT_EQ(rig.sink.count(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(rig.sink.received()[i], (i + 1) + 1000 * (i + 1));
  }
}

TEST(Join, WaitsForSlowerInput) {
  JoinRig rig;
  rig.sa.set_tokens(iota_tokens(20));
  rig.sb.set_tokens(iota_tokens(20));
  rig.sb.set_rate(0.25, 23);
  rig.s.reset();
  rig.s.run(400);
  EXPECT_EQ(rig.sink.count(), 20u);
  // A tokens were never consumed ahead of their B partners.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(rig.sink.received()[i], (i + 1) * 1001);
  }
}

TEST(Join, NoOutputWhenOneInputSilent) {
  JoinRig rig;
  rig.sa.set_tokens(iota_tokens(5));
  rig.s.reset();
  rig.s.run(50);
  EXPECT_EQ(rig.sink.count(), 0u);
  EXPECT_EQ(rig.sa.sent(), 0u);  // lazy join never consumed the A tokens
}

TEST(JoinN, ThreeWayCombination) {
  sim::Simulator s;
  Channel<std::uint64_t> a{s, "a"}, b{s, "b"}, c{s, "c"}, out{s, "out"};
  Source<std::uint64_t> sa{s, "sa", a}, sb{s, "sb", b}, sc{s, "sc", c};
  JoinN<std::uint64_t> join{s, "join", {&a, &b, &c}, out,
                            [](const std::vector<std::uint64_t>& v) {
                              std::uint64_t sum = 0;
                              for (auto x : v) sum += x;
                              return sum;
                            }};
  Sink<std::uint64_t> sink{s, "sink", out};
  sa.set_tokens({1, 2});
  sb.set_tokens({10, 20});
  sc.set_tokens({100, 200});
  s.reset();
  s.run(20);
  ASSERT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.received()[0], 111u);
  EXPECT_EQ(sink.received()[1], 222u);
}

TEST(ForkJoin, DiamondReconvergence) {
  // fork -> (EB path / direct path) -> join: classic elastic diamond.
  sim::Simulator s;
  Channel<std::uint64_t> in{s, "in"}, p0{s, "p0"}, p1{s, "p1"}, p1b{s, "p1b"},
      out{s, "out"};
  Source<std::uint64_t> src{s, "src", in};
  Fork<std::uint64_t> fork{s, "fork", in, {&p0, &p1}};
  ElasticBuffer<std::uint64_t> eb{s, "eb", p1, p1b};
  Join2<std::uint64_t, std::uint64_t, std::uint64_t> join{
      s, "join", p0, p1b, out,
      [](const std::uint64_t& x, const std::uint64_t& y) { return x * 1000 + y; }};
  Sink<std::uint64_t> sink{s, "sink", out};
  src.set_tokens(iota_tokens(30));
  s.reset();
  s.run(200);
  ASSERT_EQ(sink.count(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    // Both paths must deliver the same token generation.
    EXPECT_EQ(sink.received()[i], (i + 1) * 1000 + (i + 1));
  }
}

}  // namespace
}  // namespace mte::elastic
