// Property-style tests: for any combination of pipeline depth, source
// rate and sink rate, an elastic pipeline must never lose, duplicate or
// reorder tokens, and its sustained throughput must approach
// min(source rate, sink rate).
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "elastic/pipeline.hpp"
#include "elastic/sink.hpp"
#include "elastic/source.hpp"
#include "sim/simulator.hpp"

namespace mte::elastic {
namespace {

std::vector<std::uint64_t> iota_tokens(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

using Params = std::tuple<int /*stages*/, double /*src rate*/, double /*sink rate*/>;

class PipelineProperty : public testing::TestWithParam<Params> {};

TEST_P(PipelineProperty, ConservationAndOrder) {
  const auto [stages, src_rate, sink_rate] = GetParam();
  sim::Simulator s;
  LinearPipeline<std::uint64_t> pipe(s, "p", stages);
  Source<std::uint64_t> src(s, "src", pipe.in());
  Sink<std::uint64_t> sink(s, "sink", pipe.out());
  src.set_tokens(iota_tokens(150));
  src.set_rate(src_rate, 1000 + stages);
  sink.set_rate(sink_rate, 2000 + stages);
  s.reset();
  s.run(3000);
  EXPECT_EQ(sink.received(), iota_tokens(150))
      << "stages=" << stages << " src=" << src_rate << " sink=" << sink_rate;
}

TEST_P(PipelineProperty, SteadyStateThroughput) {
  const auto [stages, src_rate, sink_rate] = GetParam();
  sim::Simulator s;
  LinearPipeline<std::uint64_t> pipe(s, "p", stages);
  Source<std::uint64_t> src(s, "src", pipe.in());
  Sink<std::uint64_t> sink(s, "sink", pipe.out());
  src.set_generator([](std::uint64_t i) { return i; });
  src.set_rate(src_rate, 1);
  sink.set_rate(sink_rate, 2);
  s.reset();
  const int cycles = 4000;
  s.run(cycles);
  const double rate = static_cast<double>(sink.count()) / cycles;
  // An elastic pipeline of 2-slot EBs sustains min(producer, consumer)
  // under independent Bernoulli gating; allow slack for rate interaction
  // (when both ends are gated, occasional simultaneous stalls compound).
  const double bound = std::min(src_rate, sink_rate);
  EXPECT_LE(rate, bound + 0.02);
  if (src_rate >= 1.0 || sink_rate >= 1.0) {
    EXPECT_GE(rate, bound * 0.95);
  } else {
    // Both ends gated: simultaneous-stall coupling costs up to ~30 % of
    // the nominal bound for a shallow pipeline (M/M/1-like loss).
    EXPECT_GE(rate, bound * 0.7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthAndRates, PipelineProperty,
    testing::Combine(testing::Values(1, 2, 4, 8),
                     testing::Values(1.0, 0.7, 0.4),
                     testing::Values(1.0, 0.7, 0.4)),
    [](const testing::TestParamInfo<Params>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_src" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_snk" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

TEST(Pipeline, OccupancyNeverExceedsCapacity) {
  sim::Simulator s;
  LinearPipeline<std::uint64_t> pipe(s, "p", 4);
  Source<std::uint64_t> src(s, "src", pipe.in());
  Sink<std::uint64_t> sink(s, "sink", pipe.out());
  src.set_generator([](std::uint64_t i) { return i; });
  sink.set_rate(0.3, 77);
  int max_occ = 0;
  s.on_cycle([&](sim::Cycle) {
    int occ = 0;
    for (std::size_t i = 0; i < pipe.stages(); ++i) occ += pipe.buffer(i).occupancy();
    max_occ = std::max(max_occ, occ);
  });
  s.reset();
  s.run(500);
  EXPECT_LE(max_occ, 8);  // 4 stages x 2 slots
  EXPECT_GE(max_occ, 7);  // backpressure really fills the pipe
}

TEST(Pipeline, FillLatencyEqualsDepth) {
  sim::Simulator s;
  LinearPipeline<std::uint64_t> pipe(s, "p", 5);
  Source<std::uint64_t> src(s, "src", pipe.in());
  Sink<std::uint64_t> sink(s, "sink", pipe.out());
  src.set_tokens({9});
  s.reset();
  s.run(5);
  EXPECT_EQ(sink.count(), 0u);
  s.run(1);
  EXPECT_EQ(sink.count(), 1u);  // token crosses one EB per cycle
}

}  // namespace
}  // namespace mte::elastic
