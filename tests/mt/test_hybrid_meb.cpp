#include <gtest/gtest.h>

#include "mt/hybrid_meb.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

std::vector<std::uint64_t> thread_tokens(std::size_t thread, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = thread * 1000 + i;
  return v;
}

struct Rig {
  Rig(std::size_t threads, std::size_t k)
      : in(s, "in", threads), out(s, "out", threads), src(s, "src", in),
        meb(s, "meb", in, out, k), sink(s, "sink", out) {}

  sim::Simulator s;
  MtChannel<std::uint64_t> in, out;
  MtSource<std::uint64_t> src;
  HybridMeb<std::uint64_t> meb;
  MtSink<std::uint64_t> sink;
};

TEST(HybridMeb, CapacityBookkeeping) {
  Rig rig(4, 2);
  EXPECT_EQ(rig.meb.capacity(), 6u);
  EXPECT_EQ(rig.meb.shared_capacity(), 2u);
}

TEST(HybridMeb, KEqualsOneBehavesLikeReducedMeb) {
  // Single slot pool: when one thread stalls and claims it, other HALF
  // threads stop accepting.
  Rig rig(2, 1);
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  rig.sink.add_stall_window(1, 0, 50);
  rig.s.reset();
  rig.s.run(50);
  EXPECT_EQ(rig.meb.shared_used(), 1u);
  EXPECT_EQ(rig.meb.state(1), elastic::EbState::kFull);
  EXPECT_GT(rig.sink.count(0), 20u);
}

TEST(HybridMeb, KZeroCapsSingleThreadAtHalfRate) {
  Rig rig(2, 0);
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.s.reset();
  rig.s.run(200);
  EXPECT_NEAR(static_cast<double>(rig.sink.count(0)), 100.0, 5.0);
}

TEST(HybridMeb, KEqualsThreadsGivesEveryThreadTwoSlots) {
  Rig rig(3, 3);
  for (std::size_t t = 0; t < 3; ++t) {
    rig.src.set_generator(t, [t](std::uint64_t i) { return t * 1000 + i; });
    rig.sink.add_stall_window(t, 0, 30);
  }
  rig.s.reset();
  rig.s.run(30);
  // Every thread buffered two items: 3 main + 3 shared slots used.
  EXPECT_EQ(rig.meb.shared_used(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(rig.meb.state(t), elastic::EbState::kFull);
  }
}

TEST(HybridMeb, ConservationAndOrderUnderRandomTraffic) {
  for (std::size_t k : {0u, 1u, 2u, 4u}) {
    Rig rig(4, k);
    for (std::size_t t = 0; t < 4; ++t) {
      rig.src.set_tokens(t, thread_tokens(t, 40));
      rig.src.set_rate(t, 0.6, 100 + t);
      rig.sink.set_rate(t, 0.5, 200 + t);
    }
    rig.s.reset();
    rig.s.run(3000);
    for (std::size_t t = 0; t < 4; ++t) {
      EXPECT_EQ(rig.sink.received(t), thread_tokens(t, 40)) << "k=" << k << " t=" << t;
    }
  }
}

TEST(HybridMeb, SlotsRecycleAcrossThreads) {
  // Thread 0 claims and releases the single shared slot, then thread 1
  // must be able to claim it.
  Rig rig(2, 1);
  rig.src.set_tokens(0, {1, 2});
  rig.s.reset();
  rig.sink.add_stall_window(0, 0, 10);
  rig.s.run(10);
  EXPECT_EQ(rig.meb.shared_used(), 1u);
  rig.s.run(20);  // drain thread 0
  EXPECT_EQ(rig.meb.shared_used(), 0u);
  rig.src.set_tokens(1, {100, 101});
  // A fresh stall for thread 1 (window relative to current time).
  rig.sink.add_stall_window(1, 0, 1000);
  rig.s.run(20);
  EXPECT_EQ(rig.meb.shared_used(), 1u);
  EXPECT_EQ(rig.meb.state(1), elastic::EbState::kFull);
}

}  // namespace
}  // namespace mte::mt
