#include <gtest/gtest.h>

#include "mt/meb_control.hpp"

namespace mte::mt {
namespace {

constexpr std::size_t kNone = 3;  // "no thread" marker for a 3-thread control

TEST(ReducedMebControl, InitialState) {
  ReducedMebControl c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.state(i), EbState::kEmpty);
    EXPECT_TRUE(c.ready_out(i));
    EXPECT_FALSE(c.has_data(i));
  }
  EXPECT_FALSE(c.shared_full());
}

TEST(ReducedMebControl, ArrivalMovesToHalf) {
  ReducedMebControl c(3);
  const auto ops = c.commit(/*in=*/1, /*out=*/kNone);
  EXPECT_TRUE(ops.store_main);
  EXPECT_EQ(ops.in_thread, 1u);
  EXPECT_EQ(c.state(1), EbState::kHalf);
  EXPECT_TRUE(c.has_data(1));
  EXPECT_FALSE(c.shared_full());
}

TEST(ReducedMebControl, SecondArrivalClaimsSharedSlot) {
  ReducedMebControl c(3);
  c.commit(1, kNone);
  const auto ops = c.commit(1, kNone);
  EXPECT_TRUE(ops.store_shared);
  EXPECT_FALSE(ops.store_main);
  EXPECT_EQ(c.state(1), EbState::kFull);
  EXPECT_TRUE(c.shared_full());
  EXPECT_EQ(c.shared_owner(), 1u);
}

TEST(ReducedMebControl, SharedSlotBlocksOtherHalfThreads) {
  ReducedMebControl c(3);
  c.commit(0, kNone);  // thread 0 HALF
  c.commit(2, kNone);  // thread 2 HALF
  c.commit(0, kNone);  // thread 0 FULL, shared taken
  EXPECT_TRUE(c.shared_full());
  // Thread 2 is HALF but must not accept (would need the shared slot).
  EXPECT_FALSE(c.ready_out(2));
  // An EMPTY thread still accepts into its own main slot.
  EXPECT_TRUE(c.ready_out(1));
  // The FULL thread itself cannot accept either.
  EXPECT_FALSE(c.ready_out(0));
}

TEST(ReducedMebControl, DequeueFromFullRefillsFromShared) {
  ReducedMebControl c(3);
  c.commit(1, kNone);
  c.commit(1, kNone);  // FULL
  const auto ops = c.commit(kNone, 1);
  EXPECT_TRUE(ops.refill_main);
  EXPECT_EQ(ops.out_thread, 1u);
  EXPECT_EQ(c.state(1), EbState::kHalf);
  EXPECT_FALSE(c.shared_full());
  // Shared slot freed: other HALF threads become ready again.
  c.commit(0, kNone);
  EXPECT_TRUE(c.ready_out(0));
}

TEST(ReducedMebControl, DequeueFromHalfEmpties) {
  ReducedMebControl c(3);
  c.commit(2, kNone);
  const auto ops = c.commit(kNone, 2);
  EXPECT_FALSE(ops.refill_main);
  EXPECT_EQ(c.state(2), EbState::kEmpty);
}

TEST(ReducedMebControl, SimultaneousInOutSameThreadStaysHalf) {
  ReducedMebControl c(3);
  c.commit(0, kNone);  // HALF
  const auto ops = c.commit(0, 0);
  EXPECT_TRUE(ops.store_main);  // dequeued and refilled main in one cycle
  EXPECT_FALSE(ops.store_shared);
  EXPECT_EQ(c.state(0), EbState::kHalf);
  EXPECT_FALSE(c.shared_full());
}

TEST(ReducedMebControl, SimultaneousInOutDifferentThreads) {
  ReducedMebControl c(3);
  c.commit(0, kNone);
  c.commit(1, kNone);
  const auto ops = c.commit(/*in=*/2, /*out=*/0);
  EXPECT_TRUE(ops.store_main);
  EXPECT_EQ(ops.in_thread, 2u);
  EXPECT_EQ(c.state(0), EbState::kEmpty);
  EXPECT_EQ(c.state(2), EbState::kHalf);
}

TEST(ReducedMebControl, OutputFromEmptyThrows) {
  ReducedMebControl c(2);
  EXPECT_THROW(c.commit(2, 0), sim::ProtocolError);
}

TEST(ReducedMebControl, AcceptIntoFullThrows) {
  ReducedMebControl c(2);
  c.commit(0, 2);
  c.commit(0, 2);  // FULL
  EXPECT_THROW(c.commit(0, 2), sim::ProtocolError);
}

TEST(ReducedMebControl, TotalOccupancyBoundedBySlots) {
  // Fill every thread's main slot plus the shared slot: S+1 items max.
  ReducedMebControl c(3);
  c.commit(0, 3);
  c.commit(1, 3);
  c.commit(2, 3);
  c.commit(0, 3);  // thread 0 claims shared
  EXPECT_EQ(c.total_occupancy(), 4);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FALSE(c.ready_out(i));
}

TEST(ReducedMebControl, ResetClearsEverything) {
  ReducedMebControl c(2);
  c.commit(0, 2);
  c.commit(0, 2);
  c.reset();
  EXPECT_EQ(c.state(0), EbState::kEmpty);
  EXPECT_FALSE(c.shared_full());
  EXPECT_EQ(c.shared_owner(), 2u);
}

// Invariant sweep: random legal traffic never creates two FULL threads
// and occupancy never exceeds S+1.
TEST(ReducedMebControl, RandomTrafficInvariants) {
  ReducedMebControl c(4);
  std::uint64_t lcg = 12345;
  auto rnd = [&lcg](std::uint64_t bound) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return (lcg >> 33) % bound;
  };
  for (int step = 0; step < 20000; ++step) {
    // Choose a legal input (a ready thread or none) and a legal output
    // (a thread with data or none).
    std::size_t in = 4, out = 4;
    if (rnd(2) == 0) {
      const std::size_t cand = rnd(4);
      if (c.ready_out(cand)) in = cand;
    }
    if (rnd(2) == 0) {
      const std::size_t cand = rnd(4);
      if (c.has_data(cand)) out = cand;
    }
    c.commit(in, out);
    int full_threads = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      full_threads += c.state(i) == EbState::kFull ? 1 : 0;
    }
    ASSERT_LE(full_threads, 1);
    ASSERT_EQ(full_threads == 1, c.shared_full());
    ASSERT_LE(c.total_occupancy(), 5);
  }
}

}  // namespace
}  // namespace mte::mt
