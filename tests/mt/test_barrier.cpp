#include <gtest/gtest.h>

#include <algorithm>

#include "mt/barrier.hpp"
#include "mt/full_meb.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "mt/reduced_meb.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

std::vector<std::uint64_t> thread_tokens(std::size_t thread, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = thread * 1000 + i;
  return v;
}

struct BarrierRig {
  explicit BarrierRig(std::size_t threads)
      : c0(s, "c0", threads), c1(s, "c1", threads), c2(s, "c2", threads),
        src(s, "src", c0), meb(s, "meb", c0, c1), barrier(s, "bar", c1, c2),
        sink(s, "sink", c2) {}

  sim::Simulator s;
  MtChannel<std::uint64_t> c0, c1, c2;
  MtSource<std::uint64_t> src;
  ReducedMeb<std::uint64_t> meb;
  Barrier<std::uint64_t> barrier;
  MtSink<std::uint64_t> sink;
};

TEST(Barrier, HoldsUntilAllArrive) {
  BarrierRig rig(3);
  // Thread 2's data arrives much later.
  rig.src.set_tokens(0, {1});
  rig.src.set_tokens(1, {2});
  rig.src.set_tokens(2, {3});
  rig.src.add_stall_window(2, 0, 50);
  rig.s.reset();
  rig.s.run(50);
  EXPECT_EQ(rig.sink.total_count(), 0u);  // nobody passes early
  EXPECT_EQ(rig.barrier.counter(), 2u);
  rig.s.run(50);
  EXPECT_EQ(rig.sink.total_count(), 3u);  // all released together
  EXPECT_EQ(rig.barrier.releases(), 1u);
}

TEST(Barrier, ReleasesInRounds) {
  BarrierRig rig(2);
  rig.src.set_tokens(0, thread_tokens(0, 5));
  rig.src.set_tokens(1, thread_tokens(1, 5));
  rig.s.reset();
  rig.s.run(200);
  EXPECT_EQ(rig.sink.count(0), 5u);
  EXPECT_EQ(rig.sink.count(1), 5u);
  EXPECT_EQ(rig.barrier.releases(), 5u);
  // Round structure: in global arrival order, round k's pair of tokens
  // (suffix k for both threads) precedes round k+1's pair.
  const auto& order = rig.sink.order();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t k = 0; k < 5; ++k) {
    const auto gen0 = order[2 * k].second % 1000;
    const auto gen1 = order[2 * k + 1].second % 1000;
    EXPECT_EQ(gen0, k);
    EXPECT_EQ(gen1, k);
  }
}

TEST(Barrier, PerThreadOrderAcrossRounds) {
  BarrierRig rig(4);
  for (std::size_t t = 0; t < 4; ++t) {
    rig.src.set_tokens(t, thread_tokens(t, 8));
    rig.src.set_rate(t, 0.5, 700 + t);
  }
  rig.s.reset();
  rig.s.run(2000);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(rig.sink.received(t), thread_tokens(t, 8));
  }
  EXPECT_EQ(rig.barrier.releases(), 8u);
}

TEST(Barrier, GoFlagAlternates) {
  BarrierRig rig(2);
  rig.src.set_tokens(0, thread_tokens(0, 2));
  rig.src.set_tokens(1, thread_tokens(1, 2));
  rig.s.reset();
  EXPECT_FALSE(rig.barrier.go_flag());
  rig.s.run(30);
  // Two releases happened: go flipped twice, back to false.
  EXPECT_EQ(rig.barrier.releases(), 2u);
  EXPECT_FALSE(rig.barrier.go_flag());
}

TEST(Barrier, NonParticipantPassesThrough) {
  BarrierRig rig(3);
  rig.barrier.set_participating(2, false);
  rig.src.set_tokens(0, {1});
  rig.src.set_tokens(1, {2});
  rig.src.set_tokens(2, thread_tokens(2, 10));
  rig.src.add_stall_window(0, 0, 100);  // participant 0 late
  rig.s.reset();
  rig.s.run(100);
  // Thread 2 ignores the barrier entirely.
  EXPECT_EQ(rig.sink.count(2), 10u);
  EXPECT_EQ(rig.sink.count(1), 0u);  // waits for thread 0
  rig.s.run(100);
  EXPECT_EQ(rig.sink.count(0), 1u);
  EXPECT_EQ(rig.sink.count(1), 1u);
}

TEST(Barrier, ParticipationChangeWhileWaitingThrows) {
  BarrierRig rig(2);
  rig.src.set_tokens(0, {1});
  rig.src.add_stall_window(1, 0, 100);
  rig.s.reset();
  rig.s.run(20);
  ASSERT_EQ(rig.barrier.counter(), 1u);
  EXPECT_THROW(rig.barrier.set_participating(0, false), sim::SimulationError);
}

TEST(Barrier, WorksBehindFullMeb) {
  sim::Simulator s;
  MtChannel<std::uint64_t> c0(s, "c0", 2), c1(s, "c1", 2), c2(s, "c2", 2);
  MtSource<std::uint64_t> src(s, "src", c0);
  FullMeb<std::uint64_t> meb(s, "meb", c0, c1);
  Barrier<std::uint64_t> barrier(s, "bar", c1, c2);
  MtSink<std::uint64_t> sink(s, "sink", c2);
  src.set_tokens(0, thread_tokens(0, 6));
  src.set_tokens(1, thread_tokens(1, 6));
  s.reset();
  s.run(300);
  EXPECT_EQ(sink.received(0), thread_tokens(0, 6));
  EXPECT_EQ(sink.received(1), thread_tokens(1, 6));
  EXPECT_EQ(barrier.releases(), 6u);
}

TEST(Barrier, SkewedArrivalLatencyBounded) {
  // With one straggler thread, release happens shortly after its arrival.
  BarrierRig rig(3);
  for (std::size_t t = 0; t < 3; ++t) rig.src.set_tokens(t, {t});
  rig.src.add_stall_window(2, 0, 40);
  std::vector<sim::Cycle> first_delivery;
  rig.s.on_cycle([&](sim::Cycle c) {
    if (rig.sink.total_count() > 0 && first_delivery.empty()) first_delivery.push_back(c);
  });
  rig.s.reset();
  rig.s.run(100);
  ASSERT_EQ(rig.sink.total_count(), 3u);
  ASSERT_FALSE(first_delivery.empty());
  // Straggler offered at cycle 40; counted, release flips go, threads
  // free one cycle later, then drain one per cycle.
  EXPECT_LE(first_delivery.front(), 50u);
}

TEST(Barrier, ManyThreadsManyRounds) {
  BarrierRig rig(8);
  for (std::size_t t = 0; t < 8; ++t) {
    rig.src.set_tokens(t, thread_tokens(t, 4));
    rig.src.set_rate(t, 0.6, 50 + t);
  }
  rig.s.reset();
  rig.s.run(3000);
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(rig.sink.received(t), thread_tokens(t, 4)) << "thread " << t;
  }
  EXPECT_EQ(rig.barrier.releases(), 4u);
}

}  // namespace
}  // namespace mte::mt
