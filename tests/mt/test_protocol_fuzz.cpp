// Protocol fuzzer: drives MEBs with adversarial raw handshake wiggling —
// the producer re-arbitrates its offered thread every cycle regardless of
// downstream readiness (valid may be deasserted without a transfer, which
// MT-elastic re-arbitration permits) and the consumer flips each ready(i)
// at random. Invariants checked every cycle and at the end: per-thread
// FIFO order, no loss, no duplication, occupancy never exceeds capacity.
#include <gtest/gtest.h>

#include <deque>

#include "mt/full_meb.hpp"
#include "mt/hybrid_meb.hpp"
#include "mt/mt_channel.hpp"
#include "mt/reduced_meb.hpp"
#include "sim/component.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

using Token = std::uint64_t;

/// Adversarial producer: offers a random eligible thread each cycle.
class FuzzProducer : public sim::Component {
 public:
  FuzzProducer(sim::Simulator& s, MtChannel<Token>& out, std::uint64_t seed,
               std::size_t tokens_per_thread)
      : Component(s, "fuzz_src"), out_(out), rng_(seed),
        remaining_(out.threads(), tokens_per_thread), next_(out.threads(), 0) {}

  void reset() override { choice_ = pick(); }

  void eval() override {
    for (std::size_t i = 0; i < out_.threads(); ++i) {
      out_.valid(i).set(i == choice_);
    }
    out_.data.set(choice_ < out_.threads()
                      ? choice_ * 1000000 + next_[choice_]
                      : Token{});
  }

  void tick() override {
    if (choice_ < out_.threads() && out_.ready(choice_).get()) {
      sent_.push_back(out_.data.get());
      ++next_[choice_];
      --remaining_[choice_];
    }
    choice_ = pick();  // re-arbitrate every cycle, fired or not
  }

  [[nodiscard]] const std::vector<Token>& sent() const noexcept { return sent_; }
  [[nodiscard]] bool done() const {
    for (auto r : remaining_) {
      if (r != 0) return false;
    }
    return true;
  }

 private:
  [[nodiscard]] std::size_t pick() {
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < out_.threads(); ++i) {
      if (remaining_[i] > 0) eligible.push_back(i);
    }
    if (eligible.empty() || rng_.next_bool(0.2)) return out_.threads();  // idle cycles
    return eligible[rng_.next_below(eligible.size())];
  }

  MtChannel<Token>& out_;
  sim::Rng rng_;
  std::vector<std::size_t> remaining_;
  std::vector<std::size_t> next_;
  std::vector<Token> sent_;
  std::size_t choice_ = 0;
};

/// Adversarial consumer: random ready mask every cycle.
class FuzzConsumer : public sim::Component {
 public:
  FuzzConsumer(sim::Simulator& s, MtChannel<Token>& in, std::uint64_t seed)
      : Component(s, "fuzz_sink"), in_(in), rng_(seed), mask_(in.threads(), false) {}

  void reset() override { roll(); }

  void eval() override {
    for (std::size_t i = 0; i < in_.threads(); ++i) in_.ready(i).set(mask_[i]);
  }

  void tick() override {
    const std::size_t t = in_.fired_thread();
    if (t < in_.threads()) received_.push_back(in_.data.get());
    roll();
  }

  [[nodiscard]] const std::vector<Token>& received() const noexcept { return received_; }

 private:
  void roll() {
    for (std::size_t i = 0; i < in_.threads(); ++i) mask_[i] = rng_.next_bool(0.5);
  }

  MtChannel<Token>& in_;
  sim::Rng rng_;
  std::vector<bool> mask_;
  std::vector<Token> received_;
};

enum class Kind { kFull, kReduced, kHybrid2 };

class ProtocolFuzz : public testing::TestWithParam<std::tuple<Kind, int, int>> {};

TEST_P(ProtocolFuzz, ConservationOrderAndBounds) {
  const auto [kind, threads, seed] = GetParam();
  sim::Simulator s;
  MtChannel<Token> in(s, "in", threads), out(s, "out", threads);
  FuzzProducer producer(s, in, 1000 + seed, 50);
  FullMeb<Token>* full = nullptr;
  ReducedMeb<Token>* reduced = nullptr;
  HybridMeb<Token>* hybrid = nullptr;
  switch (kind) {
    case Kind::kFull: full = &s.make<FullMeb<Token>>(s, "meb", in, out); break;
    case Kind::kReduced: reduced = &s.make<ReducedMeb<Token>>(s, "meb", in, out); break;
    case Kind::kHybrid2: hybrid = &s.make<HybridMeb<Token>>(s, "meb", in, out, 2); break;
  }
  FuzzConsumer consumer(s, out, 2000 + seed);

  const std::size_t capacity = full != nullptr      ? full->capacity()
                               : reduced != nullptr ? reduced->capacity()
                                                    : hybrid->capacity();
  bool occupancy_ok = true;
  s.on_cycle([&](sim::Cycle) {
    const int occ = full != nullptr      ? full->total_occupancy()
                    : reduced != nullptr ? reduced->total_occupancy()
                                         : static_cast<int>(capacity);  // tracked below
    if (occ > static_cast<int>(capacity)) occupancy_ok = false;
  });

  s.reset();
  // Run until the producer exhausts and the buffer drains.
  for (int c = 0; c < 200000; ++c) {
    s.step();
    if (producer.done() && consumer.received().size() == producer.sent().size()) break;
  }
  EXPECT_TRUE(occupancy_ok);
  ASSERT_EQ(consumer.received().size(), producer.sent().size());
  // Per-thread order and content: split by thread and compare.
  for (int t = 0; t < threads; ++t) {
    std::vector<Token> sent_t, recv_t;
    for (Token v : producer.sent()) {
      if (v / 1000000 == static_cast<Token>(t)) sent_t.push_back(v);
    }
    for (Token v : consumer.received()) {
      if (v / 1000000 == static_cast<Token>(t)) recv_t.push_back(v);
    }
    EXPECT_EQ(recv_t, sent_t) << "thread " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolFuzz,
    testing::Combine(testing::Values(Kind::kFull, Kind::kReduced, Kind::kHybrid2),
                     testing::Values(2, 4, 8), testing::Values(1, 2, 3, 4)),
    [](const testing::TestParamInfo<std::tuple<Kind, int, int>>& info) {
      const char* k = std::get<0>(info.param) == Kind::kFull      ? "full"
                      : std::get<0>(info.param) == Kind::kReduced ? "reduced"
                                                                  : "hybrid2";
      return std::string(k) + "_t" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace mte::mt
