// ThreadMask scan helpers across word-boundary sizes. The packed-word
// representation has its interesting cases exactly at S in {1, 63, 64,
// 65}: single bit, last-bit-of-word, full word, and straddling two words.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "mt/mt_channel.hpp"
#include "mt/thread_mask.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

class ThreadMaskSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(WordBoundaries, ThreadMaskSizes,
                         ::testing::Values(1u, 63u, 64u, 65u));

TEST_P(ThreadMaskSizes, StartsEmpty) {
  const std::size_t n = GetParam();
  const ThreadMask m(n);
  EXPECT_EQ(m.size(), n);
  EXPECT_TRUE(m.none());
  EXPECT_FALSE(m.any());
  EXPECT_EQ(m.count(), 0u);
  EXPECT_FALSE(m.more_than_one());
  EXPECT_EQ(m.first_set(), n);
  EXPECT_EQ(m.first_set_from(0), n);
  EXPECT_EQ(m.first_set_from(n - 1), n);
}

TEST_P(ThreadMaskSizes, SetTestClearRoundTripsEveryBit) {
  const std::size_t n = GetParam();
  ThreadMask m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set(i, true);
    EXPECT_TRUE(m.test(i));
    EXPECT_EQ(m.count(), 1u);
    EXPECT_EQ(m.first_set(), i);
    EXPECT_FALSE(m.more_than_one());
    m.set(i, false);
    EXPECT_FALSE(m.test(i));
    EXPECT_TRUE(m.none());
  }
}

TEST_P(ThreadMaskSizes, CyclicScanFindsTheOnlyBitFromEveryOrigin) {
  const std::size_t n = GetParam();
  for (std::size_t bit = 0; bit < n; ++bit) {
    ThreadMask m(n);
    m.set(bit, true);
    for (std::size_t from = 0; from < n; ++from) {
      EXPECT_EQ(m.first_set_from(from), bit)
          << "n=" << n << " bit=" << bit << " from=" << from;
    }
  }
}

TEST_P(ThreadMaskSizes, CyclicScanPrefersAtOrAfterOrigin) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  ThreadMask m(n);
  m.set(0, true);
  m.set(n - 1, true);
  EXPECT_EQ(m.first_set_from(0), 0u);
  EXPECT_EQ(m.first_set_from(1), n - 1);   // scans up, no wrap needed
  EXPECT_EQ(m.first_set_from(n - 1), n - 1);
  EXPECT_TRUE(m.more_than_one());
  EXPECT_EQ(m.count(), 2u);
}

TEST_P(ThreadMaskSizes, AndScanMatchesNaiveReference) {
  const std::size_t n = GetParam();
  // Pseudo-pattern: a set where i % 3 == 0, b set where i % 2 == 0.
  ThreadMask a(n);
  ThreadMask b(n);
  std::vector<bool> ra(n), rb(n);
  for (std::size_t i = 0; i < n; ++i) {
    ra[i] = i % 3 == 0;
    rb[i] = i % 2 == 0;
    a.set(i, ra[i]);
    b.set(i, rb[i]);
  }
  for (std::size_t from = 0; from < n; ++from) {
    // Naive cyclic reference scan.
    std::size_t expect = n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (from + k) % n;
      if (ra[i] && rb[i]) {
        expect = i;
        break;
      }
    }
    EXPECT_EQ(ThreadMask::first_and_from(a, b, from), expect)
        << "n=" << n << " from=" << from;
  }
}

TEST_P(ThreadMaskSizes, FilledAndClearAll) {
  const std::size_t n = GetParam();
  ThreadMask m = ThreadMask::filled(n, true);
  EXPECT_EQ(m.count(), n);
  EXPECT_EQ(m.more_than_one(), n > 1);
  EXPECT_EQ(m.first_set(), 0u);
  m.clear_all();
  EXPECT_TRUE(m.none());
}

TEST(ThreadMask, AtOrAfterStopsAtEnd) {
  ThreadMask m(65);
  m.set(2, true);
  EXPECT_EQ(m.first_set_at_or_after(3), 65u);  // no wrap in the linear scan
  EXPECT_EQ(m.first_set_at_or_after(2), 2u);
  EXPECT_EQ(m.first_set_at_or_after(64), 65u);
  EXPECT_EQ(m.first_set_at_or_after(65), 65u);
  m.set(64, true);
  EXPECT_EQ(m.first_set_at_or_after(3), 64u);  // crosses the word boundary
}

// --- the wire-maintained valid mask of MtChannel ----------------------------

class MtChannelMaskSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(WordBoundaries, MtChannelMaskSizes,
                         ::testing::Values(1u, 63u, 64u, 65u));

TEST_P(MtChannelMaskSizes, ValidMaskTracksWireWrites) {
  const std::size_t n = GetParam();
  sim::Simulator s;
  MtChannel<int> ch(s, "ch", n);
  EXPECT_TRUE(ch.valid_mask().none());
  EXPECT_EQ(ch.active_thread(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ch.valid(i).set(true);
    EXPECT_TRUE(ch.valid_mask().test(i));
    EXPECT_EQ(ch.valid_mask().count(), 1u);
    EXPECT_EQ(ch.active_thread(), i);  // single valid: no throw
    ch.valid(i).set(false);
    EXPECT_TRUE(ch.valid_mask().none());
  }
}

TEST_P(MtChannelMaskSizes, ActiveThreadStillThrowsOnMultipleValids) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  sim::Simulator s;
  MtChannel<int> ch(s, "ch", n);
  ch.valid(0).set(true);
  ch.valid(n - 1).set(true);  // straddles the word boundary for n = 65
  EXPECT_THROW((void)ch.active_thread(), sim::ProtocolError);
  ch.valid(0).set(false);
  EXPECT_EQ(ch.active_thread(), n - 1);
}

TEST(MtChannelMask, ForwardedWritesKeepTheMaskInSync) {
  // FU handshakes are declared as wire forwards; a forwarded write must
  // land in the target channel's mask exactly like a direct one.
  sim::Simulator s;
  MtChannel<int> up(s, "up", 4);
  MtChannel<int> down(s, "down", 4);
  for (std::size_t i = 0; i < 4; ++i) up.valid(i).forward_to(down.valid(i));
  up.valid(2).set(true);
  EXPECT_TRUE(down.valid_mask().test(2));
  EXPECT_EQ(down.active_thread(), 2u);
  up.valid(2).set(false);
  EXPECT_TRUE(down.valid_mask().none());
}

TEST(ThreadMask, InitializerListMatchesIndices) {
  const ThreadMask m{false, true, false, true};
  EXPECT_EQ(m.size(), 4u);
  EXPECT_FALSE(m.test(0));
  EXPECT_TRUE(m.test(1));
  EXPECT_FALSE(m.test(2));
  EXPECT_TRUE(m.test(3));
  EXPECT_EQ(m.count(), 2u);
}

}  // namespace
}  // namespace mte::mt
