#include <gtest/gtest.h>

#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "mt/reduced_meb.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

std::vector<std::uint64_t> thread_tokens(std::size_t thread, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = thread * 1000 + i;
  return v;
}

struct ReducedRig {
  explicit ReducedRig(std::size_t threads)
      : in(s, "in", threads), out(s, "out", threads),
        src(s, "src", in), meb(s, "meb", in, out), sink(s, "sink", out) {}

  sim::Simulator s;
  MtChannel<std::uint64_t> in;
  MtChannel<std::uint64_t> out;
  MtSource<std::uint64_t> src;
  ReducedMeb<std::uint64_t> meb;
  MtSink<std::uint64_t> sink;
};

TEST(ReducedMeb, SingleThreadFullThroughput) {
  // Sec. III-A: when M = 1 and nothing is blocked, the single active
  // thread gets 100 % throughput (it can use the shared slot on a stall).
  ReducedRig rig(3);
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.s.reset();
  rig.s.run(100);
  EXPECT_GE(rig.sink.count(0), 98u);
}

TEST(ReducedMeb, UniformUtilizationMatchesFullMeb) {
  // Sec. III-A: with M active threads each gets 1/M — one main slot per
  // thread suffices, the shared slot is not even needed.
  for (std::size_t threads : {2u, 3u, 4u}) {
    ReducedRig rig(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      rig.src.set_generator(t, [t](std::uint64_t i) { return t * 1000 + i; });
    }
    rig.s.reset();
    rig.s.run(600);
    for (std::size_t t = 0; t < threads; ++t) {
      EXPECT_NEAR(static_cast<double>(rig.sink.count(t)), 600.0 / threads,
                  600.0 / threads * 0.05)
          << "threads=" << threads << " t=" << t;
    }
    EXPECT_GE(rig.sink.total_count(), 590u);
  }
}

TEST(ReducedMeb, PerThreadOrderPreserved) {
  ReducedRig rig(3);
  for (std::size_t t = 0; t < 3; ++t) rig.src.set_tokens(t, thread_tokens(t, 50));
  rig.s.reset();
  rig.s.run(400);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(rig.sink.received(t), thread_tokens(t, 50)) << "thread " << t;
  }
}

TEST(ReducedMeb, StalledThreadClaimsSharedSlot) {
  ReducedRig rig(2);
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  rig.sink.add_stall_window(1, 0, 50);
  rig.s.reset();
  rig.s.run(50);
  // Thread 1 blocked: its main slot + the shared slot hold its two tokens.
  EXPECT_EQ(rig.meb.occupancy(1), 2);
  EXPECT_TRUE(rig.meb.shared_full());
  EXPECT_EQ(rig.meb.shared_owner(), 1u);
  // Thread 0 can still flow through its own main slot...
  EXPECT_GT(rig.sink.count(0), 20u);
  // ...but cannot buffer two items: it never exceeds occupancy 1.
  EXPECT_LE(rig.meb.occupancy(0), 1);
}

TEST(ReducedMeb, CornerCaseSingleSurvivorGetsHalfThroughput) {
  // THE characterized difference (Sec. III-A, Fig. 5b): when every thread
  // but one is blocked and the shared slots all the way upstream are
  // occupied by the blocked thread, the surviving thread sees a single
  // slot per stage and is capped at 50 % throughput.
  sim::Simulator s;
  MtChannel<std::uint64_t> c0(s, "c0", 2), c1(s, "c1", 2), c2(s, "c2", 2);
  MtSource<std::uint64_t> src(s, "src", c0);
  ReducedMeb<std::uint64_t> m0(s, "m0", c0, c1), m1(s, "m1", c1, c2);
  MtSink<std::uint64_t> sink(s, "sink", c2);
  src.set_generator(0, [](std::uint64_t i) { return i; });
  src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  const sim::Cycle stall_start = 10, stall_end = 210;
  sink.add_stall_window(1, stall_start, stall_end);
  s.reset();
  s.run(stall_end);
  // B data occupies both shared slots; count A's rate over the saturated
  // stall region (skip the first cycles while backpressure propagates).
  const auto a_mid = sink.count(0);
  s.run(0);
  // Measure thread A throughput in a clean window deep inside the stall.
  sim::Simulator s2;
  MtChannel<std::uint64_t> d0(s2, "d0", 2), d1(s2, "d1", 2), d2(s2, "d2", 2);
  MtSource<std::uint64_t> src2(s2, "src", d0);
  ReducedMeb<std::uint64_t> n0(s2, "m0", d0, d1), n1(s2, "m1", d1, d2);
  MtSink<std::uint64_t> sink2(s2, "sink", d2);
  src2.set_generator(0, [](std::uint64_t i) { return i; });
  src2.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  sink2.add_stall_window(1, 10, 100000);
  s2.reset();
  s2.run(100);  // let the stall saturate
  const auto a0 = sink2.count(0);
  s2.run(200);
  const auto a_rate = static_cast<double>(sink2.count(0) - a0) / 200.0;
  EXPECT_NEAR(a_rate, 0.5, 0.05);  // the paper's 50 % corner case

  // And after the stall releases, B drains in order.
  (void)a_mid;
  sink.add_stall_window(1, 0, 0);
  s.run(200);
  EXPECT_GT(sink.count(1), 50u);
  for (std::size_t i = 1; i < sink.received(1).size(); ++i) {
    EXPECT_LT(sink.received(1)[i - 1], sink.received(1)[i]);
  }
}

TEST(ReducedMeb, CapacityIsThreadsPlusOne) {
  ReducedRig rig(7);
  EXPECT_EQ(rig.meb.capacity(), 8u);
}

TEST(ReducedMeb, ConservationUnderRandomRates) {
  ReducedRig rig(4);
  for (std::size_t t = 0; t < 4; ++t) {
    rig.src.set_tokens(t, thread_tokens(t, 60));
    rig.src.set_rate(t, 0.5 + 0.1 * t, 300 + t);
    rig.sink.set_rate(t, 0.4 + 0.15 * t, 400 + t);
  }
  rig.s.reset();
  rig.s.run(4000);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(rig.sink.received(t), thread_tokens(t, 60)) << "thread " << t;
  }
}

TEST(ReducedMeb, OnlyOneValidPerCycle) {
  ReducedRig rig(4);
  for (std::size_t t = 0; t < 4; ++t) {
    rig.src.set_generator(t, [t](std::uint64_t i) { return t * 1000 + i; });
  }
  bool ok = true;
  rig.s.on_cycle([&](sim::Cycle) {
    int valids = 0;
    for (std::size_t t = 0; t < 4; ++t) valids += rig.out.valid(t).get() ? 1 : 0;
    if (valids > 1) ok = false;
  });
  rig.s.reset();
  rig.s.run(200);
  EXPECT_TRUE(ok);
}

TEST(ReducedMeb, SharedSlotReleaseTakesOneCycleToReopen) {
  // Paper: "The shared buffer cannot receive a new word in the same cycle
  // since its availability will appear on the upstream channel in the
  // next clock cycle."
  sim::Simulator s;
  MtChannel<std::uint64_t> in(s, "in", 2), out(s, "out", 2);
  MtSource<std::uint64_t> src(s, "src", in);
  ReducedMeb<std::uint64_t> meb(s, "meb", in, out);
  MtSink<std::uint64_t> sink(s, "sink", out);
  src.set_generator(1, [](std::uint64_t i) { return i; });
  sink.add_stall_window(1, 0, 5);
  s.reset();
  s.run(5);
  ASSERT_TRUE(meb.shared_full());
  // Stall ends at cycle 5: thread 1 dequeues (FULL->HALF, shared freed at
  // the edge of cycle 5). During cycle 5 ready(1) upstream is still low.
  s.settle();
  EXPECT_FALSE(in.ready(1).get());
  s.run(1);
  s.settle();
  EXPECT_TRUE(in.ready(1).get());  // reopens one cycle later
}

}  // namespace
}  // namespace mte::mt
