// Integration: complete multithreaded elastic systems assembled from all
// the paper's primitives at once — the structures a synthesis tool would
// emit. These tests exercise cross-primitive interactions (arbitration
// through joins, barriers behind MEBs, shared servers inside diamonds)
// that the per-component tests cannot.
#include <gtest/gtest.h>

#include "mt/barrier.hpp"
#include "mt/full_meb.hpp"
#include "mt/m_fork.hpp"
#include "mt/m_join.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_function_unit.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "mt/mt_var_latency.hpp"
#include "mt/reduced_meb.hpp"
#include "sim/simulator.hpp"
#include "stats/latency.hpp"
#include "stats/throughput.hpp"

namespace mte::mt {
namespace {

using Token = std::uint64_t;

std::vector<Token> thread_tokens(std::size_t thread, std::size_t n) {
  std::vector<Token> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = thread * 1000 + i;
  return v;
}

// fork -> (buffered compute path with a shared variable-latency unit /
// direct path) -> join, all multithreaded, with reduced MEBs.
TEST(Integration, DiamondWithSharedVarLatencyUnit) {
  const std::size_t threads = 4;
  sim::Simulator s;
  MtChannel<Token> in(s, "in", threads), fin(s, "fin", threads);
  MtChannel<Token> pa(s, "pa", threads), pb(s, "pb", threads);
  MtChannel<Token> pa_b(s, "pa_b", threads), pb_vl(s, "pb_vl", threads),
      pb_b(s, "pb_b", threads);
  MtSource<Token> src(s, "src", in);
  MFork<Token> fork(s, "fork", in, {&pa, &pb});
  ReducedMeb<Token> meb_a(s, "meb_a", pa, pa_b);
  MtVarLatencyUnit<Token> vl(s, "vl", pb, pb_vl);
  ReducedMeb<Token> meb_b(s, "meb_b", pb_vl, pb_b);
  MJoin<Token, Token, Token> join(
      s, "join", pa_b, pb_b, fin,
      [](const Token& a, const Token& b) { return a * 1000000 + b; });
  MtSink<Token> sink(s, "sink", fin);
  vl.set_function([](const Token& x) { return x + 7; });
  vl.set_latency_range(1, 4, 55);
  for (std::size_t t = 0; t < threads; ++t) src.set_tokens(t, thread_tokens(t, 12));

  s.reset();
  s.run(3000);
  for (std::size_t t = 0; t < threads; ++t) {
    ASSERT_EQ(sink.count(t), 12u) << "thread " << t;
    for (std::size_t i = 0; i < 12; ++i) {
      const Token tok = t * 1000 + i;
      EXPECT_EQ(sink.received(t)[i], tok * 1000000 + (tok + 7));
    }
  }
}

// source -> MEB -> barrier -> compute -> MEB -> sink, several phases,
// with per-thread random backpressure: phases never interleave.
TEST(Integration, BarrierPhasedComputeUnderBackpressure) {
  const std::size_t threads = 4;
  sim::Simulator s;
  MtChannel<Token> c0(s, "c0", threads), c1(s, "c1", threads), c2(s, "c2", threads),
      c3(s, "c3", threads), c4(s, "c4", threads);
  MtSource<Token> src(s, "src", c0);
  ReducedMeb<Token> meb0(s, "meb0", c0, c1);
  Barrier<Token> barrier(s, "bar", c1, c2);
  MtFunctionUnit<Token, Token> fu(s, "fu", c2, c3,
                                  [](const Token& x) { return x * 2; });
  FullMeb<Token> meb1(s, "meb1", c3, c4);
  MtSink<Token> sink(s, "sink", c4);
  for (std::size_t t = 0; t < threads; ++t) {
    src.set_tokens(t, thread_tokens(t, 6));
    src.set_rate(t, 0.5, 31 + t);
    sink.set_rate(t, 0.6, 41 + t);
  }
  s.reset();
  s.run(5000);
  EXPECT_EQ(barrier.releases(), 6u);
  for (std::size_t t = 0; t < threads; ++t) {
    ASSERT_EQ(sink.count(t), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(sink.received(t)[i], (t * 1000 + i) * 2);
    }
  }
  // Phase discipline: in global arrival order, all of phase k's tokens
  // precede any of phase k+2's (adjacent phases may overlap while the
  // pipeline drains, but a two-phase gap is impossible).
  const auto& order = sink.order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const auto phase_i = order[i].second / 2 % 1000;
      const auto phase_j = order[j].second / 2 % 1000;
      EXPECT_LE(phase_i, phase_j + 1) << "phase inversion at " << i << "," << j;
    }
  }
}

// Two-stage MEB pipeline observed with the stats module: per-thread
// throughput symmetry and bounded in-flight latency.
TEST(Integration, StatsInstrumentation) {
  const std::size_t threads = 4;
  sim::Simulator s;
  MtChannel<Token> c0(s, "c0", threads), c1(s, "c1", threads), c2(s, "c2", threads);
  MtSource<Token> src(s, "src", c0);
  ReducedMeb<Token> m0(s, "m0", c0, c1), m1(s, "m1", c1, c2);
  MtSink<Token> sink(s, "sink", c2);
  for (std::size_t t = 0; t < threads; ++t) {
    src.set_generator(t, [t](std::uint64_t i) { return t * 100000 + i; });
  }
  stats::ThroughputMeter meter(threads);
  stats::LatencyTracker latency;
  s.on_cycle([&](sim::Cycle c) {
    const std::size_t ti = c0.fired_thread();
    if (ti < threads) latency.on_inject(c0.data.get(), c);
    const std::size_t to = c2.fired_thread();
    if (to < threads) {
      meter.record(to);
      latency.on_retire(c2.data.get(), c);
    }
  });
  s.reset();
  meter.start_window(0);
  s.run(1000);
  meter.end_window(1000);
  for (std::size_t t = 0; t < threads; ++t) {
    EXPECT_NEAR(meter.rate(t), 0.25, 0.02) << "thread " << t;
  }
  EXPECT_GE(meter.total_rate(), 0.98);
  // Latency through 2 stages at 4-way sharing: small and bounded.
  EXPECT_GE(latency.histogram().min(), 2u);
  EXPECT_LE(latency.histogram().max(), 16u);
  EXPECT_LE(latency.in_flight(), 2u * (threads + 1));
}

// Deep pipeline: 6 reduced-MEB stages, 8 threads, random rates — the
// kind of structure the MT transform emits for a synthesized kernel.
TEST(Integration, DeepPipelineConservation) {
  const std::size_t threads = 8, stages = 6;
  sim::Simulator s;
  std::vector<MtChannel<Token>*> chans;
  for (std::size_t i = 0; i <= stages; ++i) {
    chans.push_back(&s.make<MtChannel<Token>>(s, "c" + std::to_string(i), threads));
  }
  MtSource<Token> src(s, "src", *chans.front());
  for (std::size_t i = 0; i < stages; ++i) {
    s.make<ReducedMeb<Token>>(s, "m" + std::to_string(i), *chans[i], *chans[i + 1]);
  }
  MtSink<Token> sink(s, "sink", *chans.back());
  for (std::size_t t = 0; t < threads; ++t) {
    src.set_tokens(t, thread_tokens(t, 30));
    src.set_rate(t, 0.4 + 0.07 * t, 61 + t);
    sink.set_rate(t, 0.35 + 0.08 * t, 71 + t);
  }
  s.reset();
  s.run(6000);
  for (std::size_t t = 0; t < threads; ++t) {
    EXPECT_EQ(sink.received(t), thread_tokens(t, 30)) << "thread " << t;
  }
}

}  // namespace
}  // namespace mte::mt
