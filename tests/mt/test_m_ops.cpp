#include <gtest/gtest.h>

#include "mt/full_meb.hpp"
#include "mt/m_branch.hpp"
#include "mt/m_fork.hpp"
#include "mt/m_join.hpp"
#include "mt/m_merge.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "mt/reduced_meb.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

std::vector<std::uint64_t> thread_tokens(std::size_t thread, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = thread * 1000 + i;
  return v;
}

TEST(MJoin, PairsPerThreadStreams) {
  // Two MEB-buffered inputs joined per thread; outputs must pair the i-th
  // A token with the i-th B token of the same thread.
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> a0(s, "a0", threads), a1(s, "a1", threads);
  MtChannel<std::uint64_t> b0(s, "b0", threads), b1(s, "b1", threads);
  MtChannel<std::uint64_t> j(s, "j", threads);
  MtSource<std::uint64_t> sa(s, "sa", a0), sb(s, "sb", b0);
  ReducedMeb<std::uint64_t> ma(s, "ma", a0, a1), mb(s, "mb", b0, b1);
  MJoin<std::uint64_t, std::uint64_t, std::uint64_t> join(
      s, "join", a1, b1, j,
      [](const std::uint64_t& x, const std::uint64_t& y) { return x * 1000000 + y; });
  MtSink<std::uint64_t> sink(s, "sink", j);
  for (std::size_t t = 0; t < threads; ++t) {
    sa.set_tokens(t, thread_tokens(t, 20));
    sb.set_tokens(t, thread_tokens(t, 20));
  }
  s.reset();
  s.run(500);
  for (std::size_t t = 0; t < threads; ++t) {
    ASSERT_EQ(sink.count(t), 20u) << "thread " << t;
    for (std::size_t i = 0; i < 20; ++i) {
      const std::uint64_t tok = t * 1000 + i;
      EXPECT_EQ(sink.received(t)[i], tok * 1000000 + tok);
    }
  }
}

TEST(MJoin, SkewedInputsStillPairCorrectly) {
  // B's source is slow and bursty: the join must never pair across
  // generations or threads.
  sim::Simulator s;
  const std::size_t threads = 3;
  MtChannel<std::uint64_t> a0(s, "a0", threads), a1(s, "a1", threads);
  MtChannel<std::uint64_t> b0(s, "b0", threads), b1(s, "b1", threads);
  MtChannel<std::uint64_t> j(s, "j", threads);
  MtSource<std::uint64_t> sa(s, "sa", a0), sb(s, "sb", b0);
  FullMeb<std::uint64_t> ma(s, "ma", a0, a1), mb(s, "mb", b0, b1);
  MJoin<std::uint64_t, std::uint64_t, std::uint64_t> join(
      s, "join", a1, b1, j,
      [](const std::uint64_t& x, const std::uint64_t& y) { return x * 1000000 + y; });
  MtSink<std::uint64_t> sink(s, "sink", j);
  for (std::size_t t = 0; t < threads; ++t) {
    sa.set_tokens(t, thread_tokens(t, 15));
    sb.set_tokens(t, thread_tokens(t, 15));
    sb.set_rate(t, 0.25, 900 + t);
  }
  s.reset();
  s.run(2000);
  for (std::size_t t = 0; t < threads; ++t) {
    ASSERT_EQ(sink.count(t), 15u);
    for (std::size_t i = 0; i < 15; ++i) {
      const std::uint64_t tok = t * 1000 + i;
      EXPECT_EQ(sink.received(t)[i], tok * 1000000 + tok);
    }
  }
}

TEST(MFork, AllOutputsReceiveEveryThreadStream) {
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> in(s, "in", threads);
  MtChannel<std::uint64_t> o0(s, "o0", threads), o1(s, "o1", threads);
  MtSource<std::uint64_t> src(s, "src", in);
  MFork<std::uint64_t> fork(s, "fork", in, {&o0, &o1});
  MtSink<std::uint64_t> k0(s, "k0", o0), k1(s, "k1", o1);
  for (std::size_t t = 0; t < threads; ++t) src.set_tokens(t, thread_tokens(t, 25));
  s.reset();
  s.run(300);
  for (std::size_t t = 0; t < threads; ++t) {
    EXPECT_EQ(k0.received(t), thread_tokens(t, 25));
    EXPECT_EQ(k1.received(t), thread_tokens(t, 25));
  }
}

TEST(MFork, SlowOutputOnOneThreadOnlyBlocksThatThread) {
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> in(s, "in", threads);
  MtChannel<std::uint64_t> o0(s, "o0", threads), o1(s, "o1", threads);
  MtSource<std::uint64_t> src(s, "src", in);
  MFork<std::uint64_t> fork(s, "fork", in, {&o0, &o1});
  MtSink<std::uint64_t> k0(s, "k0", o0), k1(s, "k1", o1);
  src.set_generator(0, [](std::uint64_t i) { return i; });
  src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  k1.add_stall_window(1, 0, 100);  // output 1 refuses thread 1
  s.reset();
  s.run(100);
  // Thread 0 keeps flowing to both outputs.
  EXPECT_GT(k0.count(0), 40u);
  EXPECT_GT(k1.count(0), 40u);
  // Thread 1 blocked (output 1 holds the eager fork's pending bit).
  EXPECT_LE(k0.count(1), 1u);  // at most the eagerly-delivered first token
  EXPECT_EQ(k1.count(1), 0u);
}

TEST(MBranch, RoutesPerThreadByCondition) {
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> data(s, "data", threads);
  MtChannel<bool> cond(s, "cond", threads);
  MtChannel<std::uint64_t> t_out(s, "t", threads), f_out(s, "f", threads);
  MtSource<std::uint64_t> dsrc(s, "dsrc", data);
  MtSource<bool> csrc(s, "csrc", cond);
  MBranch<std::uint64_t> branch(s, "br", data, cond, t_out, f_out);
  MtSink<std::uint64_t> st(s, "st", t_out), sf(s, "sf", f_out);
  // Thread 0: even tokens true; thread 1: all false.
  std::vector<bool> c0, c1;
  for (int i = 0; i < 20; ++i) {
    c0.push_back(i % 2 == 0);
    c1.push_back(false);
  }
  dsrc.set_tokens(0, thread_tokens(0, 20));
  dsrc.set_tokens(1, thread_tokens(1, 20));
  csrc.set_tokens(0, c0);
  csrc.set_tokens(1, c1);
  s.reset();
  s.run(1000);
  std::vector<std::uint64_t> t0_true, t0_false;
  for (std::size_t i = 0; i < 20; ++i) {
    (i % 2 == 0 ? t0_true : t0_false).push_back(i);
  }
  EXPECT_EQ(st.received(0), t0_true);
  EXPECT_EQ(sf.received(0), t0_false);
  EXPECT_TRUE(st.received(1).empty());
  EXPECT_EQ(sf.received(1), thread_tokens(1, 20));
}

TEST(MMerge, MergesBranchPathsPerThread) {
  // branch -> (true path / false path) -> merge round trip, 2 threads.
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> data(s, "data", threads);
  MtChannel<bool> cond(s, "cond", threads);
  MtChannel<std::uint64_t> p_t(s, "pt", threads), p_f(s, "pf", threads);
  MtChannel<std::uint64_t> merged(s, "merged", threads);
  MtSource<std::uint64_t> dsrc(s, "dsrc", data);
  MtSource<bool> csrc(s, "csrc", cond);
  MBranch<std::uint64_t> branch(s, "br", data, cond, p_t, p_f);
  MMerge<std::uint64_t> merge(s, "mg", {&p_t, &p_f}, merged);
  MtSink<std::uint64_t> sink(s, "sink", merged);
  std::vector<bool> c0, c1;
  for (int i = 0; i < 24; ++i) {
    c0.push_back(i % 3 == 0);
    c1.push_back(i % 2 == 0);
  }
  dsrc.set_tokens(0, thread_tokens(0, 24));
  dsrc.set_tokens(1, thread_tokens(1, 24));
  csrc.set_tokens(0, c0);
  csrc.set_tokens(1, c1);
  s.reset();
  s.run(1000);
  // Every token reappears, per thread, in original order.
  EXPECT_EQ(sink.received(0), thread_tokens(0, 24));
  EXPECT_EQ(sink.received(1), thread_tokens(1, 24));
}

TEST(MMerge, CrossThreadPathsBothDrain) {
  // Path A carries only thread 0, path B only thread 1: the merge's path
  // selector must interleave them without loss.
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> pa(s, "pa", threads), pb(s, "pb", threads);
  MtChannel<std::uint64_t> merged(s, "merged", threads);
  MtSource<std::uint64_t> sa(s, "sa", pa), sb(s, "sb", pb);
  MMerge<std::uint64_t> merge(s, "mg", {&pa, &pb}, merged);
  MtSink<std::uint64_t> sink(s, "sink", merged);
  sa.set_tokens(0, thread_tokens(0, 30));
  sb.set_tokens(1, thread_tokens(1, 30));
  s.reset();
  s.run(300);
  EXPECT_EQ(sink.received(0), thread_tokens(0, 30));
  EXPECT_EQ(sink.received(1), thread_tokens(1, 30));
}

TEST(MMerge, ThrowsWhenSameThreadValidOnBothPaths) {
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> pa(s, "pa", threads), pb(s, "pb", threads);
  MtChannel<std::uint64_t> merged(s, "merged", threads);
  MtSource<std::uint64_t> sa(s, "sa", pa), sb(s, "sb", pb);
  MMerge<std::uint64_t> merge(s, "mg", {&pa, &pb}, merged);
  MtSink<std::uint64_t> sink(s, "sink", merged);
  sa.set_tokens(0, {1});
  sb.set_tokens(0, {2});  // same thread on the other path: protocol error
  s.reset();
  EXPECT_THROW(s.run(10), sim::ProtocolError);
}

TEST(MForkMJoin, DiamondReconvergencePerThread) {
  // M-Fork -> (MEB path / direct path) -> M-Join diamond with 2 threads.
  sim::Simulator s;
  const std::size_t threads = 2;
  MtChannel<std::uint64_t> in(s, "in", threads);
  MtChannel<std::uint64_t> p0(s, "p0", threads), p1(s, "p1", threads),
      p1b(s, "p1b", threads);
  MtChannel<std::uint64_t> out(s, "out", threads);
  MtSource<std::uint64_t> src(s, "src", in);
  MFork<std::uint64_t> fork(s, "fork", in, {&p0, &p1});
  FullMeb<std::uint64_t> meb(s, "meb", p1, p1b);
  MJoin<std::uint64_t, std::uint64_t, std::uint64_t> join(
      s, "join", p0, p1b, out,
      [](const std::uint64_t& x, const std::uint64_t& y) { return x * 1000000 + y; });
  MtSink<std::uint64_t> sink(s, "sink", out);
  for (std::size_t t = 0; t < threads; ++t) src.set_tokens(t, thread_tokens(t, 20));
  s.reset();
  s.run(1000);
  for (std::size_t t = 0; t < threads; ++t) {
    ASSERT_EQ(sink.count(t), 20u) << "thread " << t;
    for (std::size_t i = 0; i < 20; ++i) {
      const std::uint64_t tok = t * 1000 + i;
      EXPECT_EQ(sink.received(t)[i], tok * 1000000 + tok);
    }
  }
}

}  // namespace
}  // namespace mte::mt
