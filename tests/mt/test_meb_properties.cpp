// Parameterized equivalence properties between FullMeb and ReducedMeb
// pipelines: for any thread count, pipeline depth and random traffic
// pattern, both designs must deliver every token exactly once, in
// per-thread order; and outside the characterized corner case their
// throughput must match.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "mt/full_meb.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "mt/reduced_meb.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

enum class MebKind { kFull, kReduced };

struct MtPipeline {
  MtPipeline(sim::Simulator& s, std::size_t threads, std::size_t stages, MebKind kind) {
    for (std::size_t i = 0; i <= stages; ++i) {
      channels.push_back(
          &s.make<MtChannel<std::uint64_t>>(s, "ch" + std::to_string(i), threads));
    }
    for (std::size_t i = 0; i < stages; ++i) {
      const std::string name = "meb" + std::to_string(i);
      if (kind == MebKind::kFull) {
        fulls.push_back(&s.make<FullMeb<std::uint64_t>>(s, name, *channels[i],
                                                        *channels[i + 1]));
      } else {
        reduceds.push_back(&s.make<ReducedMeb<std::uint64_t>>(s, name, *channels[i],
                                                              *channels[i + 1]));
      }
    }
  }

  MtChannel<std::uint64_t>& in() { return *channels.front(); }
  MtChannel<std::uint64_t>& out() { return *channels.back(); }

  std::vector<MtChannel<std::uint64_t>*> channels;
  std::vector<FullMeb<std::uint64_t>*> fulls;
  std::vector<ReducedMeb<std::uint64_t>*> reduceds;
};

std::vector<std::uint64_t> thread_tokens(std::size_t thread, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = thread * 100000 + i;
  return v;
}

using Params = std::tuple<MebKind, int /*threads*/, int /*stages*/, int /*seed*/>;

class MebProperty : public testing::TestWithParam<Params> {};

TEST_P(MebProperty, ConservationOrderAndNoDuplication) {
  const auto [kind, threads, stages, seed] = GetParam();
  sim::Simulator s;
  MtPipeline pipe(s, threads, stages, kind);
  MtSource<std::uint64_t> src(s, "src", pipe.in());
  MtSink<std::uint64_t> sink(s, "sink", pipe.out());
  const std::size_t per_thread = 40;
  for (int t = 0; t < threads; ++t) {
    src.set_tokens(t, thread_tokens(t, per_thread));
    src.set_rate(t, 0.3 + 0.6 * ((seed + t) % 3) / 2.0, seed * 17 + t);
    sink.set_rate(t, 0.3 + 0.6 * ((seed + t + 1) % 3) / 2.0, seed * 31 + t);
  }
  s.reset();
  s.run(8000);
  for (int t = 0; t < threads; ++t) {
    EXPECT_EQ(sink.received(t), thread_tokens(t, per_thread))
        << "kind=" << (kind == MebKind::kFull ? "full" : "reduced")
        << " threads=" << threads << " stages=" << stages << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MebProperty,
    testing::Combine(testing::Values(MebKind::kFull, MebKind::kReduced),
                     testing::Values(1, 2, 4, 8),
                     testing::Values(1, 3),
                     testing::Values(1, 2, 3)),
    [](const testing::TestParamInfo<Params>& info) {
      return std::string(std::get<0>(info.param) == MebKind::kFull ? "full"
                                                                   : "reduced") +
             "_t" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) + "_r" +
             std::to_string(std::get<3>(info.param));
    });

using ThroughputParams = std::tuple<int /*threads*/, int /*stages*/>;

class MebThroughputEquivalence : public testing::TestWithParam<ThroughputParams> {};

TEST_P(MebThroughputEquivalence, UniformTrafficIdenticalThroughput) {
  // Sec. III-A: under uniform utilization the reduced MEB matches the
  // full MEB exactly — each active thread gets 1/M of the channel.
  const auto [threads, stages] = GetParam();
  std::uint64_t totals[2] = {0, 0};
  for (MebKind kind : {MebKind::kFull, MebKind::kReduced}) {
    sim::Simulator s;
    MtPipeline pipe(s, threads, stages, kind);
    MtSource<std::uint64_t> src(s, "src", pipe.in());
    MtSink<std::uint64_t> sink(s, "sink", pipe.out());
    for (int t = 0; t < threads; ++t) {
      src.set_generator(t, [t](std::uint64_t i) { return t * 100000 + i; });
    }
    s.reset();
    s.run(1000);
    totals[kind == MebKind::kFull ? 0 : 1] = sink.total_count();
    for (int t = 0; t < threads; ++t) {
      EXPECT_NEAR(static_cast<double>(sink.count(t)), 1000.0 / threads,
                  1000.0 / threads * 0.05);
    }
  }
  // Aggregate throughput identical to within pipeline fill effects.
  EXPECT_NEAR(static_cast<double>(totals[0]), static_cast<double>(totals[1]), 10.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MebThroughputEquivalence,
                         testing::Combine(testing::Values(1, 2, 4, 8),
                                          testing::Values(1, 2, 4)),
                         [](const testing::TestParamInfo<ThroughputParams>& info) {
                           return "t" + std::to_string(std::get<0>(info.param)) +
                                  "_s" + std::to_string(std::get<1>(info.param));
                         });

TEST(MebDivergence, OnlyCornerCaseDiffers) {
  // Quantify the one behavioural difference: single survivor with the
  // other thread blocked to saturation. Full keeps ~1.0, reduced ~0.5.
  double rates[2];
  for (MebKind kind : {MebKind::kFull, MebKind::kReduced}) {
    sim::Simulator s;
    MtPipeline pipe(s, 2, 3, kind);
    MtSource<std::uint64_t> src(s, "src", pipe.in());
    MtSink<std::uint64_t> sink(s, "sink", pipe.out());
    src.set_generator(0, [](std::uint64_t i) { return i; });
    src.set_generator(1, [](std::uint64_t i) { return 100000 + i; });
    sink.add_stall_window(1, 0, 1000000);
    s.reset();
    s.run(200);  // saturate the stall
    const auto before = sink.count(0);
    s.run(400);
    rates[kind == MebKind::kFull ? 0 : 1] =
        static_cast<double>(sink.count(0) - before) / 400.0;
  }
  EXPECT_NEAR(rates[0], 1.0, 0.05);  // full MEB: survivor unaffected
  EXPECT_NEAR(rates[1], 0.5, 0.05);  // reduced MEB: survivor halved
}

}  // namespace
}  // namespace mte::mt
