#include <gtest/gtest.h>

#include "mt/full_meb.hpp"
#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

std::vector<std::uint64_t> thread_tokens(std::size_t thread, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = thread * 1000 + i;
  return v;
}

struct FullRig {
  explicit FullRig(std::size_t threads)
      : in(s, "in", threads), out(s, "out", threads),
        src(s, "src", in), meb(s, "meb", in, out), sink(s, "sink", out) {}

  sim::Simulator s;
  MtChannel<std::uint64_t> in;
  MtChannel<std::uint64_t> out;
  MtSource<std::uint64_t> src;
  FullMeb<std::uint64_t> meb;
  MtSink<std::uint64_t> sink;
};

TEST(FullMeb, SingleThreadFullThroughput) {
  FullRig rig(3);
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.s.reset();
  rig.s.run(100);
  // Only thread 0 active: it gets ~100 % of the channel.
  EXPECT_GE(rig.sink.count(0), 98u);
  EXPECT_EQ(rig.sink.count(1), 0u);
}

TEST(FullMeb, TwoThreadsShareChannelEvenly) {
  FullRig rig(2);
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  rig.s.reset();
  rig.s.run(200);
  EXPECT_NEAR(static_cast<double>(rig.sink.count(0)), 100.0, 3.0);
  EXPECT_NEAR(static_cast<double>(rig.sink.count(1)), 100.0, 3.0);
  // Channel never idles while both threads push.
  EXPECT_GE(rig.sink.total_count(), 197u);
}

TEST(FullMeb, PerThreadOrderPreserved) {
  FullRig rig(3);
  for (std::size_t t = 0; t < 3; ++t) rig.src.set_tokens(t, thread_tokens(t, 50));
  rig.s.reset();
  rig.s.run(400);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(rig.sink.received(t), thread_tokens(t, 50)) << "thread " << t;
  }
}

TEST(FullMeb, StalledThreadDoesNotBlockOthers) {
  FullRig rig(2);
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  rig.sink.add_stall_window(1, 0, 100);  // thread 1 blocked at the sink
  rig.s.reset();
  rig.s.run(100);
  // Thread 0 gets (nearly) the whole channel; full MEB never couples threads.
  EXPECT_GE(rig.sink.count(0), 95u);
  EXPECT_EQ(rig.sink.count(1), 0u);
  // Thread 1's two private slots absorbed two tokens.
  EXPECT_EQ(rig.meb.occupancy(1), 2);
}

TEST(FullMeb, CapacityIsTwoPerThread) {
  FullRig rig(4);
  EXPECT_EQ(rig.meb.capacity(), 8u);
}

TEST(FullMeb, OnlyOneValidPerCycle) {
  FullRig rig(4);
  for (std::size_t t = 0; t < 4; ++t) {
    rig.src.set_generator(t, [t](std::uint64_t i) { return t * 1000 + i; });
  }
  bool ok = true;
  rig.s.on_cycle([&](sim::Cycle) {
    int valids = 0;
    for (std::size_t t = 0; t < 4; ++t) valids += rig.out.valid(t).get() ? 1 : 0;
    if (valids > 1) ok = false;
  });
  rig.s.reset();
  rig.s.run(200);
  EXPECT_TRUE(ok);
}

TEST(FullMeb, ConservationUnderRandomRates) {
  FullRig rig(4);
  for (std::size_t t = 0; t < 4; ++t) {
    rig.src.set_tokens(t, thread_tokens(t, 60));
    rig.src.set_rate(t, 0.5 + 0.1 * t, 100 + t);
    rig.sink.set_rate(t, 0.4 + 0.15 * t, 200 + t);
  }
  rig.s.reset();
  rig.s.run(4000);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(rig.sink.received(t), thread_tokens(t, 60)) << "thread " << t;
  }
}

TEST(FullMeb, TwoStagePipelineStallScenarioKeepsThreadAAtFullRate) {
  // The Fig. 5a experiment: 2 threads, 2 stages of full MEBs, thread B's
  // sink stalls. Thread A must keep using the channel at ~50 % while B is
  // stalled *and* B's tokens occupy only B's private slots; once every B
  // slot fills, A gets ~100 %.
  sim::Simulator s;
  MtChannel<std::uint64_t> c0(s, "c0", 2), c1(s, "c1", 2), c2(s, "c2", 2);
  MtSource<std::uint64_t> src(s, "src", c0);
  FullMeb<std::uint64_t> m0(s, "m0", c0, c1), m1(s, "m1", c1, c2);
  MtSink<std::uint64_t> sink(s, "sink", c2);
  src.set_generator(0, [](std::uint64_t i) { return i; });
  src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  sink.add_stall_window(1, 0, 60);
  s.reset();
  s.run(60);
  const auto a_before = sink.count(0);
  // B consumed nothing, A should have dominated once B's slots filled.
  EXPECT_EQ(sink.count(1), 0u);
  EXPECT_GE(a_before, 50u);  // well above the 50 % floor
  s.run(140);
  // After release B drains and both threads stream again.
  EXPECT_GT(sink.count(1), 30u);
  // Per-thread order held throughout.
  for (std::size_t i = 1; i < sink.received(1).size(); ++i) {
    EXPECT_LT(sink.received(1)[i - 1], sink.received(1)[i]);
  }
}

}  // namespace
}  // namespace mte::mt
