#include <gtest/gtest.h>

#include "mt/mt_channel.hpp"
#include "mt/mt_sink.hpp"
#include "mt/mt_source.hpp"
#include "mt/mt_var_latency.hpp"
#include "sim/simulator.hpp"

namespace mte::mt {
namespace {

struct Rig {
  explicit Rig(std::size_t threads)
      : in(s, "in", threads), out(s, "out", threads), src(s, "src", in),
        unit(s, "vl", in, out), sink(s, "sink", out) {}

  sim::Simulator s;
  MtChannel<std::uint64_t> in, out;
  MtSource<std::uint64_t> src;
  MtVarLatencyUnit<std::uint64_t> unit;
  MtSink<std::uint64_t> sink;
};

TEST(MtVarLatency, SharedUnitServesAllThreadsInOrder) {
  Rig rig(3);
  rig.unit.set_latency_range(1, 5, 77);
  for (std::size_t t = 0; t < 3; ++t) {
    std::vector<std::uint64_t> toks;
    for (int i = 0; i < 10; ++i) toks.push_back(t * 1000 + i);
    rig.src.set_tokens(t, toks);
  }
  rig.s.reset();
  rig.s.run(500);
  for (std::size_t t = 0; t < 3; ++t) {
    ASSERT_EQ(rig.sink.count(t), 10u) << "thread " << t;
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(rig.sink.received(t)[i], t * 1000 + i);
    }
  }
}

TEST(MtVarLatency, AppliesFunction) {
  Rig rig(2);
  rig.unit.set_function([](const std::uint64_t& x) { return x * 3; });
  rig.unit.set_latency_fn([](const std::uint64_t&) { return 2u; });
  rig.src.set_tokens(0, {1, 2});
  rig.src.set_tokens(1, {10});
  rig.s.reset();
  rig.s.run(100);
  EXPECT_EQ(rig.sink.received(0), (std::vector<std::uint64_t>{3, 6}));
  EXPECT_EQ(rig.sink.received(1), (std::vector<std::uint64_t>{30}));
}

TEST(MtVarLatency, SingleOccupancySerializesThreads) {
  // Latency 4 per token, 2 threads: the shared unit's throughput is one
  // token per ~5 cycles regardless of thread count.
  Rig rig(2);
  rig.unit.set_latency_fn([](const std::uint64_t&) { return 4u; });
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  rig.s.reset();
  rig.s.run(500);
  EXPECT_NEAR(static_cast<double>(rig.sink.total_count()), 100.0, 8.0);
}

TEST(MtVarLatency, FastPredicatePassesThroughAtFullRate) {
  Rig rig(2);
  rig.unit.set_fast_predicate([](const std::uint64_t&) { return true; });
  rig.src.set_generator(0, [](std::uint64_t i) { return i; });
  rig.src.set_generator(1, [](std::uint64_t i) { return 1000 + i; });
  rig.s.reset();
  rig.s.run(300);
  // Pure pass-through: the channel runs at full rate.
  EXPECT_GE(rig.sink.total_count(), 295u);
}

TEST(MtVarLatency, MixedFastSlowTraffic) {
  // Odd tokens are slow (latency 3), even tokens pass through.
  Rig rig(2);
  rig.unit.set_fast_predicate([](const std::uint64_t& x) { return x % 2 == 0; });
  rig.unit.set_latency_fn([](const std::uint64_t&) { return 3u; });
  rig.src.set_tokens(0, {2, 3, 4, 5, 6});
  rig.src.set_tokens(1, {1000, 1001, 1002});
  rig.s.reset();
  rig.s.run(300);
  EXPECT_EQ(rig.sink.received(0), (std::vector<std::uint64_t>{2, 3, 4, 5, 6}));
  EXPECT_EQ(rig.sink.received(1), (std::vector<std::uint64_t>{1000, 1001, 1002}));
}

TEST(MtVarLatency, BackpressureHoldsResult) {
  Rig rig(2);
  rig.unit.set_latency_fn([](const std::uint64_t&) { return 2u; });
  rig.src.set_tokens(1, {42});
  rig.sink.add_stall_window(1, 0, 30);
  rig.s.reset();
  rig.s.run(30);
  rig.s.settle();
  EXPECT_TRUE(rig.out.valid(1).get());
  EXPECT_EQ(rig.out.data.get(), 42u);
  EXPECT_TRUE(rig.unit.busy());
  rig.s.run(10);
  EXPECT_EQ(rig.sink.count(1), 1u);
  EXPECT_FALSE(rig.unit.busy());
}

}  // namespace
}  // namespace mte::mt
