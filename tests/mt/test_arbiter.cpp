#include <gtest/gtest.h>

#include "mt/arbiter.hpp"

namespace mte::mt {
namespace {

TEST(RoundRobin, GrantsOnlyReadyPending) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.grant({false, true, false, true}, {false, true, false, false}), 1u);
}

TEST(RoundRobin, NoRequestNoGrant) {
  RoundRobinArbiter a(3);
  EXPECT_EQ(a.grant({false, false, false}, {true, true, true}), 3u);
}

TEST(RoundRobin, RotatesAfterFire) {
  RoundRobinArbiter a(3);
  const ThreadMask all = ThreadMask::filled(3, true);
  const auto g0 = a.grant(all, all);
  EXPECT_EQ(g0, 0u);
  a.update(g0, true);
  const auto g1 = a.grant(all, all);
  EXPECT_EQ(g1, 1u);
  a.update(g1, true);
  const auto g2 = a.grant(all, all);
  EXPECT_EQ(g2, 2u);
  a.update(g2, true);
  EXPECT_EQ(a.grant(all, all), 0u);
}

TEST(RoundRobin, SpeculativeOfferWhenNothingReady) {
  RoundRobinArbiter a(3);
  // Threads 1 and 2 have data, nothing is ready downstream.
  EXPECT_EQ(a.grant({false, true, true}, {false, false, false}), 1u);
}

TEST(RoundRobin, SpeculativeOfferRotates) {
  RoundRobinArbiter a(3);
  const ThreadMask pending = ThreadMask::filled(3, true);
  const ThreadMask none(3);
  const auto g0 = a.grant(pending, none);
  a.update(g0, false);
  const auto g1 = a.grant(pending, none);
  a.update(g1, false);
  const auto g2 = a.grant(pending, none);
  // Over consecutive non-firing cycles every thread gets offered.
  EXPECT_NE(g0, g1);
  EXPECT_NE(g1, g2);
  EXPECT_NE(g0, g2);
}

TEST(RoundRobin, ReadyThreadPreferredOverSpeculative) {
  RoundRobinArbiter a(3);
  EXPECT_EQ(a.grant({true, true, false}, {false, true, false}), 1u);
}

TEST(RoundRobin, FairnessUnderSaturation) {
  RoundRobinArbiter a(4);
  std::vector<int> grants(4, 0);
  const ThreadMask all = ThreadMask::filled(4, true);
  for (int i = 0; i < 400; ++i) {
    const auto g = a.grant(all, all);
    ASSERT_LT(g, 4u);
    ++grants[g];
    a.update(g, true);
  }
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(RoundRobin, ResetRestoresPointer) {
  RoundRobinArbiter a(3);
  const ThreadMask all = ThreadMask::filled(3, true);
  a.update(a.grant(all, all), true);
  a.reset();
  EXPECT_EQ(a.grant(all, all), 0u);
}

TEST(RoundRobin, GrantsAcrossWordBoundary) {
  // 65 threads: the grant scan crosses the packed-word boundary, and the
  // cyclic wrap returns to word 0.
  RoundRobinArbiter a(65);
  ThreadMask pending(65);
  ThreadMask ready(65);
  pending.set(64, true);
  ready.set(64, true);
  EXPECT_EQ(a.grant(pending, ready), 64u);
  a.update(64, true);  // pointer rotates to 65 % 65 == 0
  pending.set(3, true);
  ready.set(3, true);
  EXPECT_EQ(a.grant(pending, ready), 3u);
  a.update(3, true);   // pointer at 4: thread 64 is next in cyclic order
  EXPECT_EQ(a.grant(pending, ready), 64u);
}

TEST(FixedPriority, AlwaysLowestReadyIndex) {
  FixedPriorityArbiter a(4);
  const ThreadMask all = ThreadMask::filled(4, true);
  for (int i = 0; i < 10; ++i) {
    const auto g = a.grant(all, all);
    EXPECT_EQ(g, 0u);
    a.update(g, true);
  }
}

TEST(FixedPriority, StarvesHighIndicesUnderLoad) {
  FixedPriorityArbiter a(2);
  const ThreadMask all = ThreadMask::filled(2, true);
  int grants1 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto g = a.grant(all, all);
    grants1 += g == 1 ? 1 : 0;
    a.update(g, true);
  }
  EXPECT_EQ(grants1, 0);
}

TEST(FixedPriority, SpeculativeStillRotates) {
  FixedPriorityArbiter a(3);
  const ThreadMask pending = ThreadMask::filled(3, true);
  const ThreadMask none(3);
  std::vector<bool> offered(3, false);
  for (int i = 0; i < 3; ++i) {
    const auto g = a.grant(pending, none);
    ASSERT_LT(g, 3u);
    offered[g] = true;
    a.update(g, false);
  }
  EXPECT_TRUE(offered[0] && offered[1] && offered[2]);
}

TEST(Matrix, GrantsLeastRecentlyServed) {
  MatrixArbiter a(3);
  const ThreadMask all = ThreadMask::filled(3, true);
  const auto g0 = a.grant(all, all);
  a.update(g0, true);
  const auto g1 = a.grant(all, all);
  EXPECT_NE(g1, g0);
  a.update(g1, true);
  const auto g2 = a.grant(all, all);
  EXPECT_NE(g2, g0);
  EXPECT_NE(g2, g1);
  a.update(g2, true);
  // Now the least recently served is g0 again.
  EXPECT_EQ(a.grant(all, all), g0);
}

TEST(Matrix, FairnessUnderSaturation) {
  MatrixArbiter a(4);
  const ThreadMask all = ThreadMask::filled(4, true);
  std::vector<int> grants(4, 0);
  for (int i = 0; i < 400; ++i) {
    const auto g = a.grant(all, all);
    ASSERT_LT(g, 4u);
    ++grants[g];
    a.update(g, true);
  }
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(Matrix, PartialRequests) {
  MatrixArbiter a(3);
  const ThreadMask all = ThreadMask::filled(3, true);
  a.update(a.grant(all, all), true);  // 0 served
  // Only 0 and 2 request; 2 is older (never served).
  EXPECT_EQ(a.grant({true, false, true}, {true, true, true}), 2u);
}

TEST(Matrix, SpeculativeOfferRotates) {
  MatrixArbiter a(2);
  const ThreadMask pending = ThreadMask::filled(2, true);
  const ThreadMask none(2);
  const auto g0 = a.grant(pending, none);
  a.update(g0, false);
  const auto g1 = a.grant(pending, none);
  EXPECT_NE(g0, g1);
}

// ---------------------------------------------------------------------------
// update_is_noop soundness: tick elision skips an MEB's clock edge only
// when its arbiter reports the pending update as a no-op, so a true
// answer must mean update() really is the identity. We verify
// behaviourally: two identically driven arbiters, one receiving the
// "no-op" update, must keep granting identically afterwards.
// ---------------------------------------------------------------------------

template <typename A>
void expect_noop_claims_sound(std::size_t threads) {
  const ThreadMask all = ThreadMask::filled(threads, true);
  const ThreadMask none(threads);
  // Exercise every (granted source, fired) combination from a few
  // rotation states.
  for (int warmup = 0; warmup < 4; ++warmup) {
    for (const bool fired : {false, true}) {
      for (const bool use_grant : {false, true}) {
        A probe(threads);
        A witness(threads);
        // Drive both into the same state.
        for (int k = 0; k < warmup; ++k) {
          const auto g = probe.grant(all, all);
          probe.update(g, true);
          witness.update(witness.grant(all, all), true);
        }
        const std::size_t granted =
            use_grant ? probe.grant(all, none) : threads;
        if (granted == threads && fired) continue;  // not a legal combo
        if (!probe.update_is_noop(granted, fired)) continue;
        probe.update(granted, fired);  // claimed identity: apply it
        // Both must now grant identically over a full rotation.
        for (int k = 0; k < 8; ++k) {
          const auto gp = probe.grant(all, all);
          const auto gw = witness.grant(all, all);
          ASSERT_EQ(gp, gw) << "update_is_noop lied for granted=" << granted
                            << " fired=" << fired << " warmup=" << warmup;
          probe.update(gp, true);
          witness.update(gw, true);
          const auto sp = probe.grant(all, none);
          const auto sw = witness.grant(all, none);
          ASSERT_EQ(sp, sw);
          probe.update(sp, false);
          witness.update(sw, false);
        }
      }
    }
  }
}

TEST(UpdateIsNoop, RoundRobinSound) { expect_noop_claims_sound<RoundRobinArbiter>(3); }
TEST(UpdateIsNoop, FixedPrioritySound) {
  expect_noop_claims_sound<FixedPriorityArbiter>(3);
}
TEST(UpdateIsNoop, MatrixSound) { expect_noop_claims_sound<MatrixArbiter>(3); }
TEST(UpdateIsNoop, ObliviousSound) { expect_noop_claims_sound<ObliviousArbiter>(3); }

TEST(UpdateIsNoop, RoundRobinCases) {
  RoundRobinArbiter a(3);
  EXPECT_TRUE(a.update_is_noop(3, false));   // no grant, no fire: no rotation
  EXPECT_FALSE(a.update_is_noop(0, true));   // fire rotates past the winner
  EXPECT_FALSE(a.update_is_noop(0, false));  // speculative offer rotates
  RoundRobinArbiter single(1);
  EXPECT_TRUE(single.update_is_noop(0, true));  // S=1: rotation is identity
}

TEST(UpdateIsNoop, FixedPriorityFiredEdgeIsNoop) {
  // Fixed priority only rotates its speculative pointer on a granted,
  // non-firing edge; a fire leaves all state alone.
  FixedPriorityArbiter a(3);
  EXPECT_TRUE(a.update_is_noop(0, true));
  EXPECT_TRUE(a.update_is_noop(3, false));
  EXPECT_FALSE(a.update_is_noop(0, false));
}

TEST(UpdateIsNoop, MatrixCases) {
  MatrixArbiter a(3);
  EXPECT_TRUE(a.update_is_noop(3, false));   // no grant
  EXPECT_FALSE(a.update_is_noop(1, true));   // fire reorders the matrix
  EXPECT_FALSE(a.update_is_noop(1, false));  // speculative rotation
}

TEST(UpdateIsNoop, ObliviousAlwaysRotates) {
  ObliviousArbiter a(3);
  EXPECT_FALSE(a.update_is_noop(3, false));  // the barrel turns regardless
  EXPECT_FALSE(a.update_is_noop(0, true));
  ObliviousArbiter single(1);
  EXPECT_TRUE(single.update_is_noop(1, false));
}

}  // namespace
}  // namespace mte::mt
