#include <gtest/gtest.h>

#include "mt/arbiter.hpp"

namespace mte::mt {
namespace {

TEST(RoundRobin, GrantsOnlyReadyPending) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.grant({false, true, false, true}, {false, true, false, false}), 1u);
}

TEST(RoundRobin, NoRequestNoGrant) {
  RoundRobinArbiter a(3);
  EXPECT_EQ(a.grant({false, false, false}, {true, true, true}), 3u);
}

TEST(RoundRobin, RotatesAfterFire) {
  RoundRobinArbiter a(3);
  std::vector<bool> all{true, true, true};
  const auto g0 = a.grant(all, all);
  EXPECT_EQ(g0, 0u);
  a.update(g0, true);
  const auto g1 = a.grant(all, all);
  EXPECT_EQ(g1, 1u);
  a.update(g1, true);
  const auto g2 = a.grant(all, all);
  EXPECT_EQ(g2, 2u);
  a.update(g2, true);
  EXPECT_EQ(a.grant(all, all), 0u);
}

TEST(RoundRobin, SpeculativeOfferWhenNothingReady) {
  RoundRobinArbiter a(3);
  // Threads 1 and 2 have data, nothing is ready downstream.
  EXPECT_EQ(a.grant({false, true, true}, {false, false, false}), 1u);
}

TEST(RoundRobin, SpeculativeOfferRotates) {
  RoundRobinArbiter a(3);
  std::vector<bool> pending{true, true, true};
  std::vector<bool> none(3, false);
  const auto g0 = a.grant(pending, none);
  a.update(g0, false);
  const auto g1 = a.grant(pending, none);
  a.update(g1, false);
  const auto g2 = a.grant(pending, none);
  // Over consecutive non-firing cycles every thread gets offered.
  EXPECT_NE(g0, g1);
  EXPECT_NE(g1, g2);
  EXPECT_NE(g0, g2);
}

TEST(RoundRobin, ReadyThreadPreferredOverSpeculative) {
  RoundRobinArbiter a(3);
  EXPECT_EQ(a.grant({true, true, false}, {false, true, false}), 1u);
}

TEST(RoundRobin, FairnessUnderSaturation) {
  RoundRobinArbiter a(4);
  std::vector<int> grants(4, 0);
  std::vector<bool> all(4, true);
  for (int i = 0; i < 400; ++i) {
    const auto g = a.grant(all, all);
    ASSERT_LT(g, 4u);
    ++grants[g];
    a.update(g, true);
  }
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(RoundRobin, ResetRestoresPointer) {
  RoundRobinArbiter a(3);
  std::vector<bool> all(3, true);
  a.update(a.grant(all, all), true);
  a.reset();
  EXPECT_EQ(a.grant(all, all), 0u);
}

TEST(FixedPriority, AlwaysLowestReadyIndex) {
  FixedPriorityArbiter a(4);
  std::vector<bool> all(4, true);
  for (int i = 0; i < 10; ++i) {
    const auto g = a.grant(all, all);
    EXPECT_EQ(g, 0u);
    a.update(g, true);
  }
}

TEST(FixedPriority, StarvesHighIndicesUnderLoad) {
  FixedPriorityArbiter a(2);
  std::vector<bool> all(2, true);
  int grants1 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto g = a.grant(all, all);
    grants1 += g == 1 ? 1 : 0;
    a.update(g, true);
  }
  EXPECT_EQ(grants1, 0);
}

TEST(FixedPriority, SpeculativeStillRotates) {
  FixedPriorityArbiter a(3);
  std::vector<bool> pending(3, true);
  std::vector<bool> none(3, false);
  std::vector<bool> offered(3, false);
  for (int i = 0; i < 3; ++i) {
    const auto g = a.grant(pending, none);
    ASSERT_LT(g, 3u);
    offered[g] = true;
    a.update(g, false);
  }
  EXPECT_TRUE(offered[0] && offered[1] && offered[2]);
}

TEST(Matrix, GrantsLeastRecentlyServed) {
  MatrixArbiter a(3);
  std::vector<bool> all(3, true);
  const auto g0 = a.grant(all, all);
  a.update(g0, true);
  const auto g1 = a.grant(all, all);
  EXPECT_NE(g1, g0);
  a.update(g1, true);
  const auto g2 = a.grant(all, all);
  EXPECT_NE(g2, g0);
  EXPECT_NE(g2, g1);
  a.update(g2, true);
  // Now the least recently served is g0 again.
  EXPECT_EQ(a.grant(all, all), g0);
}

TEST(Matrix, FairnessUnderSaturation) {
  MatrixArbiter a(4);
  std::vector<bool> all(4, true);
  std::vector<int> grants(4, 0);
  for (int i = 0; i < 400; ++i) {
    const auto g = a.grant(all, all);
    ASSERT_LT(g, 4u);
    ++grants[g];
    a.update(g, true);
  }
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(Matrix, PartialRequests) {
  MatrixArbiter a(3);
  std::vector<bool> all(3, true);
  a.update(a.grant(all, all), true);  // 0 served
  // Only 0 and 2 request; 2 is older (never served).
  EXPECT_EQ(a.grant({true, false, true}, {true, true, true}), 2u);
}

TEST(Matrix, SpeculativeOfferRotates) {
  MatrixArbiter a(2);
  std::vector<bool> pending(2, true);
  std::vector<bool> none(2, false);
  const auto g0 = a.grant(pending, none);
  a.update(g0, false);
  const auto g1 = a.grant(pending, none);
  EXPECT_NE(g0, g1);
}

}  // namespace
}  // namespace mte::mt
