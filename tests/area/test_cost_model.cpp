#include <gtest/gtest.h>

#include "area/cost_model.hpp"
#include "area/designs.hpp"

namespace mte::area {
namespace {

TEST(CostModel, ReducedMebAlwaysSmallerThanFull) {
  CostModel m;
  for (unsigned threads : {2u, 4u, 8u, 16u, 32u}) {
    for (unsigned bits : {8u, 32u, 64u, 264u}) {
      const auto full = m.full_meb("f", bits, threads);
      const auto reduced = m.reduced_meb("r", bits, threads);
      EXPECT_LT(reduced.les, full.les) << "S=" << threads << " W=" << bits;
    }
  }
}

TEST(CostModel, MebSavingsApproachHalfAtLargeThreadCounts) {
  // 2SW vs (S+1)W storage: the register savings tend to (S-1)/(2S) -> 50 %.
  CostModel m;
  const auto full = m.full_meb("f", 512, 64);
  const auto reduced = m.reduced_meb("r", 512, 64);
  const double savings = (full.les - reduced.les) / full.les;
  EXPECT_GT(savings, 0.35);
  EXPECT_LT(savings, 0.55);
}

TEST(CostModel, SingleThreadMebNearEbCost) {
  // With S = 1 the full MEB degenerates to one EB (+ arbiter overhead).
  CostModel m;
  const auto eb = m.eb("eb", 32);
  const auto full = m.full_meb("f", 32, 1);
  EXPECT_NEAR(full.les, eb.les, 10.0);
}

TEST(CostModel, AreaMonotonicInThreadsAndWidth) {
  CostModel m;
  double prev = 0;
  for (unsigned threads = 1; threads <= 16; threads *= 2) {
    const auto a = m.reduced_meb("r", 64, threads);
    EXPECT_GT(a.les, prev);
    prev = a.les;
  }
  prev = 0;
  for (unsigned bits = 8; bits <= 512; bits *= 2) {
    const auto a = m.full_meb("f", bits, 8);
    EXPECT_GT(a.les, prev);
    prev = a.les;
  }
}

TEST(CostModel, FrequencyDropsWithArea) {
  CostModel m;
  DesignEstimate small{"s", {m.comb("c", 100, 0, 10)}};
  DesignEstimate large{"l", {m.comb("c", 100000, 0, 10)}};
  EXPECT_GT(m.frequency_mhz(small), m.frequency_mhz(large));
}

TEST(CostModel, FrequencySetByDeepestItem) {
  CostModel m;
  DesignEstimate d{"d", {m.comb("shallow", 10, 0, 2), m.comb("deep", 10, 0, 30)}};
  EXPECT_DOUBLE_EQ(d.max_logic_levels(), 30.0);
}

TEST(TableOne, Paper8ThreadShape) {
  // The qualitative claims of Table I at S = 8:
  //  - reduced saves LEs on both designs,
  //  - savings land in the paper's 10-30 % band,
  //  - the processor (MEB-dominated) saves more than MD5,
  //  - reduced clocks equal or slightly faster.
  CostModel m;
  const TableRow md5 = md5_row(m, 8);
  const TableRow proc = processor_row(m, 8);
  EXPECT_GT(md5.savings_percent(), 8.0);
  EXPECT_LT(md5.savings_percent(), 30.0);
  EXPECT_GT(proc.savings_percent(), 8.0);
  EXPECT_LT(proc.savings_percent(), 35.0);
  EXPECT_GT(proc.savings_percent(), md5.savings_percent());
  EXPECT_GE(md5.reduced_mhz, md5.full_mhz);
  EXPECT_GE(proc.reduced_mhz, proc.full_mhz);
}

TEST(TableOne, SavingsGrowWithSixteenThreads) {
  // Paper: "If we increase the number of threads to 16 the average
  // savings rise above 22 %".
  CostModel m;
  const double avg8 =
      (md5_row(m, 8).savings_percent() + processor_row(m, 8).savings_percent()) / 2;
  const double avg16 =
      (md5_row(m, 16).savings_percent() + processor_row(m, 16).savings_percent()) / 2;
  EXPECT_GT(avg16, avg8);
  EXPECT_GT(avg16, 22.0);
}

TEST(TableOne, FrequenciesInPlausibleFpgaRange) {
  CostModel m;
  const TableRow md5 = md5_row(m, 8);
  const TableRow proc = processor_row(m, 8);
  // MD5 is slow (16 unrolled steps in one cycle), the processor is
  // pipelined: an order of magnitude apart, like the paper's 11 vs 60 MHz.
  EXPECT_GT(md5.full_mhz, 5.0);
  EXPECT_LT(md5.full_mhz, 25.0);
  EXPECT_GT(proc.full_mhz, 40.0);
  EXPECT_LT(proc.full_mhz, 120.0);
  EXPECT_GT(proc.full_mhz, 3.0 * md5.full_mhz);
}

TEST(TableOne, SavingsMonotonicInThreadCount) {
  CostModel m;
  double prev_md5 = 0, prev_proc = 0;
  for (unsigned threads : {2u, 4u, 8u, 16u, 32u}) {
    const double s_md5 = md5_row(m, threads).savings_percent();
    const double s_proc = processor_row(m, threads).savings_percent();
    EXPECT_GT(s_md5, prev_md5) << "S=" << threads;
    EXPECT_GT(s_proc, prev_proc) << "S=" << threads;
    prev_md5 = s_md5;
    prev_proc = s_proc;
  }
}

TEST(Designs, ItemBreakdownSumsToTotal) {
  CostModel m;
  const auto d = md5_design(m, 8, mt::MebKind::kFull);
  double sum = 0;
  for (const auto& item : d.items) sum += item.les;
  EXPECT_DOUBLE_EQ(sum, d.total_les());
  EXPECT_GE(d.items.size(), 5u);
}

}  // namespace
}  // namespace mte::area

namespace mte::area {
namespace {

TEST(Storage, LatchMebCheaperThanFlipFlopMeb) {
  // Paper Sec. I: MEBs can be built from flip flops or level-sensitive
  // latches; the latch datapath is cheaper at equal behaviour.
  CostModel m;
  for (mt::MebKind kind : {mt::MebKind::kFull, mt::MebKind::kReduced}) {
    const auto ff = m.meb_with_storage("ff", 64, 8, kind, StorageKind::kFlipFlop);
    const auto latch = m.meb_with_storage("l", 64, 8, kind, StorageKind::kLatch);
    EXPECT_LT(latch.les, ff.les);
    // Identical control cost: the difference is purely the datapath bits.
    EXPECT_NEAR(ff.les - latch.les,
                (kind == mt::MebKind::kFull ? 16.0 : 9.0) * 64 *
                    (m.params().le_per_reg_bit - m.params().le_per_latch_bit),
                1.0);
  }
}

TEST(Storage, FlipFlopOverloadMatchesDefault) {
  CostModel m;
  const auto a = m.full_meb("a", 32, 4);
  const auto b = m.meb_with_storage("b", 32, 4, mt::MebKind::kFull,
                                    StorageKind::kFlipFlop);
  EXPECT_DOUBLE_EQ(a.les, b.les);
}

}  // namespace
}  // namespace mte::area
